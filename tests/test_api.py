"""CheckConfig consolidation, deprecation shims, CLI round-trip, and the
``repro.api`` facade."""

import json
import warnings

import pytest

from repro import CheckConfig, api
from repro.cli import _config_from_args, build_parser
from repro.core.checker import MCChecker, check_app, check_traces
from repro.core.config import _reset_legacy_warning
from repro.profiler.session import profile_run
from repro.simmpi import DOUBLE, LOCK_SHARED


def _figure1(mpi):
    shared = mpi.alloc("shared", 1, datatype=DOUBLE,
                       fill=float(10 * mpi.rank))
    out = mpi.alloc("out", 1, datatype=DOUBLE, fill=0.0)
    win = mpi.win_create(shared)
    mpi.barrier()
    if mpi.rank == 0:
        win.lock(1, LOCK_SHARED)
        win.get(out, target=1, origin_count=1)
        out[0] = out[0] + 1.0
        win.unlock(1)
    mpi.barrier()
    win.free()


@pytest.fixture(scope="module")
def traces():
    return profile_run(_figure1, 2).traces


class TestCheckConfig:
    def test_defaults(self):
        config = CheckConfig()
        assert config.memory_model == "separate"
        assert config.engine == "sweep"
        assert config.jobs == 1
        assert not config.streaming
        assert not config.incremental
        assert config.cache_dir is None

    def test_replace_derives_new_value(self):
        config = CheckConfig()
        derived = config.replace(jobs=4)
        assert derived.jobs == 4 and config.jobs == 1

    def test_frozen(self):
        with pytest.raises(AttributeError):
            CheckConfig().jobs = 2

    @pytest.mark.parametrize("kwargs", [
        dict(memory_model="relaxed"),
        dict(engine="quantum"),
        dict(incremental=True),  # no cache_dir
        dict(incremental=True, cache_dir="c", streaming=True),
        dict(incremental=True, cache_dir="c", naive_inter=True),
        dict(incremental=True, cache_dir="c", engine="pairwise"),
    ])
    def test_invalid_combinations_raise(self, kwargs):
        with pytest.raises(ValueError):
            CheckConfig(**kwargs)


class TestLegacyShims:
    def test_legacy_kwargs_warn_once_and_apply(self, traces):
        _reset_legacy_warning()
        with pytest.warns(DeprecationWarning):
            checker = MCChecker(traces, memory_model="unified", jobs=2)
        assert checker.memory_model == "unified"
        assert checker.jobs == 2
        assert checker.config.memory_model == "unified"
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            MCChecker(traces, engine="pairwise")  # second time: silent

    def test_legacy_kwargs_override_config(self, traces):
        _reset_legacy_warning()
        with pytest.warns(DeprecationWarning):
            checker = MCChecker(traces, CheckConfig(jobs=4),
                                memory_model="unified")
        assert checker.jobs == 4
        assert checker.memory_model == "unified"

    def test_config_must_be_checkconfig(self, traces):
        with pytest.raises(TypeError):
            MCChecker(traces, {"jobs": 2})

    def test_check_traces_legacy_matches_config(self, traces):
        _reset_legacy_warning()
        with pytest.warns(DeprecationWarning):
            legacy = check_traces(traces, memory_model="unified")
        config = check_traces(traces, CheckConfig(memory_model="unified"))
        assert json.dumps([f.to_dict() for f in legacy.findings]) == \
            json.dumps([f.to_dict() for f in config.findings])

    def test_check_app_accepts_config(self):
        report = check_app(_figure1, 2,
                           config=CheckConfig(memory_model="unified"))
        assert report.stats.nranks == 2


class TestCliRoundTrip:
    FLAGS = ["--memory-model", "unified", "--engine", "sweep",
             "--jobs", "3", "--cache-dir", "/tmp/c", "--incremental"]
    EXPECTED = CheckConfig(memory_model="unified", engine="sweep", jobs=3,
                           cache_dir="/tmp/c", incremental=True)

    def test_check_flags_round_trip(self):
        args = build_parser().parse_args(["check", "dir"] + self.FLAGS)
        assert _config_from_args(args) == self.EXPECTED

    def test_run_check_flags_round_trip(self):
        args = build_parser().parse_args(["run-check", "emulate"]
                                         + self.FLAGS)
        assert _config_from_args(args) == self.EXPECTED

    def test_run_accepts_the_same_flags(self):
        args = build_parser().parse_args(["run", "emulate"] + self.FLAGS)
        assert _config_from_args(args) == self.EXPECTED

    def test_identical_defaults_across_subcommands(self):
        parser = build_parser()
        configs = [
            _config_from_args(parser.parse_args(["check", "dir"])),
            _config_from_args(parser.parse_args(["run-check", "emulate"])),
            _config_from_args(parser.parse_args(["run", "emulate"])),
        ]
        assert configs[0] == configs[1] == configs[2] == CheckConfig()

    def test_incremental_requires_cache_dir(self):
        args = build_parser().parse_args(["check", "dir", "--incremental"])
        with pytest.raises(SystemExit):
            _config_from_args(args)


class TestApiFacade:
    def test_run_check_finds_figure1_bug(self):
        report = api.run_check(_figure1, 2, delivery="lazy")
        assert report.has_errors

    def test_check_accepts_trace_path_and_overrides(self, traces):
        via_set = api.check(traces, jobs=1)
        via_path = api.check(traces.directory,
                             CheckConfig(memory_model="separate"))
        assert json.dumps([f.to_dict() for f in via_set.findings]) == \
            json.dumps([f.to_dict() for f in via_path.findings])

    def test_run_then_check(self, tmp_path):
        run = api.run(_figure1, 2, trace_dir=str(tmp_path),
                      trace_format="binary")
        report = api.check(run.traces)
        assert report.stats.nranks == 2

    def test_facade_exported_from_package_root(self):
        import repro
        assert repro.api.check is api.check
        assert repro.run_check is api.run_check
        assert repro.CheckConfig is CheckConfig


class TestApiObservability:
    """S1: the api verbs accept obs exports and flush them even when the
    analysis raises."""

    def test_check_writes_exports(self, traces, tmp_path):
        metrics = tmp_path / "m.prom"
        chrome = tmp_path / "t.json"
        api.check(traces, metrics_out=str(metrics),
                  chrome_trace=str(chrome))
        assert "# TYPE" in metrics.read_text()
        doc = json.loads(chrome.read_text())
        assert any(e.get("name") == "analyzer.run"
                   for e in doc["traceEvents"])

    def test_check_restores_previous_recorder(self, traces, tmp_path):
        from repro import obs
        before = obs.get_recorder()
        api.check(traces, metrics_out=str(tmp_path / "m.prom"))
        assert obs.get_recorder() is before

    def test_obs_config_object_accepted(self, traces, tmp_path):
        from repro import obs
        metrics = tmp_path / "m.prom"
        api.check(traces, obs_config=obs.ObsConfig(
            metrics_out=str(metrics)))
        assert metrics.exists()
        with pytest.raises(TypeError):
            api.check(traces, obs_config=obs.ObsConfig(enabled=True),
                      metrics_out=str(metrics))

    def test_raising_check_still_writes_both_files(self, tmp_path):
        metrics = tmp_path / "m.prom"
        chrome = tmp_path / "t.json"
        with pytest.raises((OSError, ValueError)):
            api.check(str(tmp_path / "no-such-trace-dir"),
                      metrics_out=str(metrics),
                      chrome_trace=str(chrome))
        assert metrics.exists(), "metrics not flushed on failure"
        assert chrome.exists(), "chrome trace not flushed on failure"
        json.loads(chrome.read_text())

    def test_no_exports_means_no_recording(self, traces):
        from repro import obs
        api.check(traces)
        assert not obs.is_enabled()
