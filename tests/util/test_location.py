"""Tests for source-location capture and encoding."""

from repro.util.location import SourceLocation, UNKNOWN_LOCATION, capture_location


class TestSourceLocation:
    def test_encode_decode_roundtrip(self):
        loc = SourceLocation("/a/b/app.py", 42, "main")
        assert SourceLocation.decode(loc.encode()) == loc

    def test_decode_with_colons_in_path(self):
        loc = SourceLocation("/a:b/app.py", 7, "f")
        assert SourceLocation.decode(loc.encode()) == loc

    def test_short_form(self):
        assert SourceLocation("/x/y/app.py", 12, "f").short == "app.py:12"

    def test_ordering(self):
        a = SourceLocation("a.py", 1, "f")
        b = SourceLocation("a.py", 2, "f")
        assert a < b


class TestCaptureLocation:
    def test_captures_this_test(self):
        loc = capture_location()
        assert loc.filename.endswith("test_location.py")
        assert loc.function == "test_captures_this_test"

    def test_unknown_constant(self):
        assert UNKNOWN_LOCATION.lineno == 0

    def test_skips_runtime_frames(self):
        # simulate a call through a runtime-owned file by checking the
        # fragment logic indirectly: capture from here is never attributed
        # to threading.py
        loc = capture_location()
        assert "/threading.py" not in loc.filename
