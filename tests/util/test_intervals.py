"""Unit + property tests for the byte-interval algebra."""

import pytest
from hypothesis import given, strategies as st

from repro.util.intervals import (Interval, IntervalSet, IntervalTable,
                                  datamap_intervals, naive_overlap_join,
                                  overlap_join)


# ----------------------------------------------------------------------
# Interval basics
# ----------------------------------------------------------------------

class TestInterval:
    def test_length(self):
        assert len(Interval(3, 10)) == 7

    def test_empty(self):
        assert Interval(5, 5).is_empty()
        assert not Interval(5, 6).is_empty()

    def test_invalid_rejected(self):
        with pytest.raises(ValueError):
            Interval(10, 3)

    def test_overlap_positive(self):
        assert Interval(0, 10).overlaps(Interval(9, 20))

    def test_overlap_negative_adjacent(self):
        # half-open: [0,10) and [10,20) share no byte
        assert not Interval(0, 10).overlaps(Interval(10, 20))

    def test_overlap_contained(self):
        assert Interval(0, 100).overlaps(Interval(40, 41))

    def test_intersection(self):
        assert Interval(0, 10).intersection(Interval(5, 20)) == Interval(5, 10)

    def test_intersection_disjoint_is_empty(self):
        assert Interval(0, 5).intersection(Interval(7, 9)).is_empty()

    def test_contains(self):
        assert Interval(0, 10).contains(Interval(2, 8))
        assert not Interval(0, 10).contains(Interval(2, 12))

    def test_shift(self):
        assert Interval(1, 4).shift(10) == Interval(11, 14)


# ----------------------------------------------------------------------
# IntervalSet
# ----------------------------------------------------------------------

class TestIntervalSet:
    def test_normalization_merges_adjacent(self):
        s = IntervalSet([Interval(0, 5), Interval(5, 10)])
        assert s.intervals == (Interval(0, 10),)

    def test_normalization_merges_overlap(self):
        s = IntervalSet([Interval(0, 7), Interval(3, 10)])
        assert s.intervals == (Interval(0, 10),)

    def test_normalization_keeps_gaps(self):
        s = IntervalSet([Interval(0, 3), Interval(5, 8)])
        assert len(s) == 2

    def test_empty_intervals_dropped(self):
        assert not IntervalSet([Interval(4, 4)])

    def test_single_constructor(self):
        assert IntervalSet.single(10, 4).intervals == (Interval(10, 14),)

    def test_single_zero_length_is_empty(self):
        assert not IntervalSet.single(10, 0)

    def test_byte_count(self):
        s = IntervalSet([Interval(0, 3), Interval(10, 14)])
        assert s.byte_count() == 7

    def test_bounds(self):
        s = IntervalSet([Interval(2, 3), Interval(10, 14)])
        assert s.bounds() == Interval(2, 14)

    def test_overlaps_true(self):
        a = IntervalSet([Interval(0, 4), Interval(10, 14)])
        b = IntervalSet([Interval(12, 20)])
        assert a.overlaps(b)

    def test_overlaps_false_interleaved(self):
        a = IntervalSet([Interval(0, 4), Interval(10, 14)])
        b = IntervalSet([Interval(4, 10), Interval(14, 20)])
        assert not a.overlaps(b)

    def test_intersection(self):
        a = IntervalSet([Interval(0, 10)])
        b = IntervalSet([Interval(2, 4), Interval(8, 12)])
        assert a.intersection(b).intervals == (Interval(2, 4), Interval(8, 10))

    def test_union(self):
        a = IntervalSet([Interval(0, 4)])
        b = IntervalSet([Interval(2, 8)])
        assert a.union(b).intervals == (Interval(0, 8),)

    def test_contains_point(self):
        s = IntervalSet([Interval(0, 4), Interval(10, 14)])
        assert s.contains_point(0)
        assert s.contains_point(11)
        assert not s.contains_point(4)
        assert not s.contains_point(9)

    def test_shift(self):
        s = IntervalSet([Interval(0, 4)]).shift(100)
        assert s.intervals == (Interval(100, 104),)

    def test_equality_and_hash(self):
        a = IntervalSet([Interval(0, 5), Interval(5, 10)])
        b = IntervalSet([Interval(0, 10)])
        assert a == b
        assert hash(a) == hash(b)


# ----------------------------------------------------------------------
# data-map application
# ----------------------------------------------------------------------

class TestDatamapIntervals:
    def test_mpi_int_datamap(self):
        # the paper's example: MPI_INT is {(0, 4)}
        s = datamap_intervals(100, [(0, 4)], count=1, extent=4)
        assert s.intervals == (Interval(100, 104),)

    def test_two_ints_with_gap(self):
        # the paper's example: two MPI_INTs separated by an 8-byte gap
        s = datamap_intervals(0, [(0, 4), (12, 4)], count=1, extent=16)
        assert s.intervals == (Interval(0, 4), Interval(12, 16))

    def test_count_replication(self):
        s = datamap_intervals(0, [(0, 4)], count=3, extent=8)
        assert s.intervals == (Interval(0, 4), Interval(8, 12),
                               Interval(16, 20))

    def test_contiguous_count_coalesces(self):
        s = datamap_intervals(0, [(0, 4)], count=3, extent=4)
        assert s.intervals == (Interval(0, 12),)

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            datamap_intervals(0, [(0, 4)], count=-1, extent=4)


# ----------------------------------------------------------------------
# property-based
# ----------------------------------------------------------------------

intervals_strategy = st.lists(
    st.tuples(st.integers(0, 500), st.integers(0, 50)).map(
        lambda p: Interval(p[0], p[0] + p[1])),
    max_size=12)


@given(intervals_strategy)
def test_prop_normalized_sorted_disjoint(ivs):
    s = IntervalSet(ivs)
    for a, b in zip(s.intervals, s.intervals[1:]):
        assert a.stop < b.start  # strictly disjoint with a gap


@given(intervals_strategy)
def test_prop_byte_count_equals_point_membership(ivs):
    s = IntervalSet(ivs)
    member_count = sum(1 for p in range(600) if s.contains_point(p))
    assert member_count == s.byte_count()


@given(intervals_strategy, intervals_strategy)
def test_prop_overlap_symmetric_and_consistent(ivs_a, ivs_b):
    a, b = IntervalSet(ivs_a), IntervalSet(ivs_b)
    assert a.overlaps(b) == b.overlaps(a)
    assert a.overlaps(b) == bool(a.intersection(b))


@given(intervals_strategy, intervals_strategy)
def test_prop_intersection_subset_of_both(ivs_a, ivs_b):
    a, b = IntervalSet(ivs_a), IntervalSet(ivs_b)
    inter = a.intersection(b)
    for p in range(600):
        if inter.contains_point(p):
            assert a.contains_point(p) and b.contains_point(p)
        elif a.contains_point(p) and b.contains_point(p):
            raise AssertionError(f"point {p} missing from intersection")


@given(intervals_strategy, intervals_strategy)
def test_prop_union_is_pointwise_or(ivs_a, ivs_b):
    a, b = IntervalSet(ivs_a), IntervalSet(ivs_b)
    u = a.union(b)
    for p in range(600):
        assert u.contains_point(p) == (a.contains_point(p)
                                       or b.contains_point(p))


@given(st.integers(0, 100), st.lists(
    st.tuples(st.integers(0, 40), st.integers(0, 10)), max_size=4),
    st.integers(0, 5), st.integers(1, 64))
def test_prop_datamap_byte_count(base, datamap, count, extent):
    s = datamap_intervals(base, datamap, count, extent)
    # bytes covered never exceeds count * sum(lengths); equality holds when
    # segments don't self-overlap across replications
    assert s.byte_count() <= count * sum(n for _d, n in datamap)


# ----------------------------------------------------------------------
# IntervalTable + the sweep join
# ----------------------------------------------------------------------

class TestIntervalTable:
    def test_zero_length_rows_dropped(self):
        t = IntervalTable([0, 5, 9], [4, 5, 12])
        assert len(t) == 2  # [5,5) vanishes
        assert list(t.owner) == [0, 2]  # owners keep their original ids

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            IntervalTable([0, 1], [2])
        with pytest.raises(ValueError):
            IntervalTable([0, 1], [2, 3], owner=[0])

    def test_from_columns(self):
        t = IntervalTable.from_columns([10, 20], [4, 0])
        assert len(t) == 1
        assert (t.lo[0], t.hi[0]) == (10, 14)

    def test_from_sets_explicit_owners(self):
        sets = [IntervalSet([Interval(0, 4), Interval(8, 12)]),
                IntervalSet([Interval(20, 24)])]
        t = IntervalTable.from_sets(sets, owners=[7, 9])
        assert list(t.owner) == [7, 7, 9]

    def test_concat(self):
        a = IntervalTable([0], [4], owner=[1])
        b = IntervalTable([10], [14], owner=[2])
        c = IntervalTable.concat([a, IntervalTable((), ()), b])
        assert list(c.owner) == [1, 2]

    def test_concat_empty(self):
        assert len(IntervalTable.concat([])) == 0

    def test_join_empty_sides(self):
        t = IntervalTable([0], [4])
        empty = IntervalTable((), ())
        for a, b in ((t, empty), (empty, t), (empty, empty)):
            ai, bi = overlap_join(a, b)
            assert len(ai) == 0 and len(bi) == 0

    def test_join_adjacent_not_overlapping(self):
        # half-open ranges: [0,10) vs [10,20) share no byte
        ai, bi = overlap_join(IntervalTable([0], [10]),
                              IntervalTable([10], [20]))
        assert len(ai) == 0

    def test_join_duplicate_rows_unique_pairs(self):
        # two rows of the same owner overlapping one b row -> one pair
        a = IntervalTable([0, 2], [4, 6], owner=[5, 5])
        b = IntervalTable([3], [10], owner=[8])
        ai, bi = overlap_join(a, b)
        assert list(ai) == [5] and list(bi) == [8]

    def test_self_join_reports_self_pairs(self):
        t = IntervalTable([0, 2], [4, 6])
        ai, bi = overlap_join(t, t)
        pairs = set(zip(ai.tolist(), bi.tolist()))
        assert pairs == {(0, 0), (0, 1), (1, 0), (1, 1)}


table_strategy = st.lists(
    st.tuples(st.integers(0, 300), st.integers(0, 40),
              st.integers(0, 6)),
    max_size=16).map(
        lambda rows: IntervalTable([r[0] for r in rows],
                                   [r[0] + r[1] for r in rows],
                                   owner=[r[2] for r in rows]))


def _pair_set(ai, bi):
    return set(zip(ai.tolist(), bi.tolist()))


@given(table_strategy, table_strategy)
def test_prop_overlap_join_matches_naive(a, b):
    assert _pair_set(*overlap_join(a, b)) == \
        _pair_set(*naive_overlap_join(a, b))


@given(table_strategy, table_strategy)
def test_prop_overlap_join_symmetric(a, b):
    ab = _pair_set(*overlap_join(a, b))
    ba = _pair_set(*overlap_join(b, a))
    assert ab == {(x, y) for (y, x) in ba}
