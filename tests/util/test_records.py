"""Round-trip and robustness tests for the trace record codec."""

import pytest
from hypothesis import given, strategies as st

from repro.util.errors import TraceFormatError
from repro.util.records import (
    Record, decode_record, decode_value, encode_record, encode_value,
    escape, unescape,
)


class TestEscaping:
    def test_plain_passthrough(self):
        assert escape("hello") == "hello"

    def test_space(self):
        assert escape("a b") == "a%20b"

    def test_equals(self):
        assert escape("a=b") == "a%3Db"

    def test_percent_first(self):
        assert unescape(escape("100% a=b")) == "100% a=b"

    def test_newline(self):
        assert unescape(escape("a\nb")) == "a\nb"


class TestValues:
    def test_int_roundtrip(self):
        assert decode_value(encode_value(42)) == 42

    def test_negative_int(self):
        assert decode_value(encode_value(-7)) == -7

    def test_string_roundtrip(self):
        assert decode_value(encode_value("Win_create")) == "Win_create"

    def test_string_with_spaces(self):
        assert decode_value(encode_value("a b=c")) == "a b=c"

    def test_numeric_looking_string_stays_string(self):
        assert decode_value(encode_value("123x")) == "123x"

    def test_empty_list(self):
        assert decode_value(encode_value([])) == ()

    def test_int_list(self):
        assert decode_value(encode_value([1, 2, 3])) == (1, 2, 3)

    def test_bool_encodes_as_int(self):
        assert decode_value(encode_value(True)) == 1

    def test_garbage_value_raises(self):
        with pytest.raises(TraceFormatError):
            decode_value("not-an-int")


class TestRecords:
    def test_roundtrip(self):
        line = encode_record("C", {"seq": 3, "fn": "Put", "targets": [1, 2]})
        rec = decode_record(line)
        assert rec.kind == "C"
        assert rec.get_int("seq") == 3
        assert rec.get_str("fn") == "Put"
        assert rec.get_ints("targets") == (1, 2)

    def test_none_fields_skipped(self):
        line = encode_record("C", {"a": 1, "b": None})
        assert "b=" not in line

    def test_missing_field_raises(self):
        rec = decode_record("C seq=1")
        with pytest.raises(TraceFormatError):
            rec.get_int("nope")

    def test_missing_field_default(self):
        rec = decode_record("C seq=1")
        assert rec.get_str("app", "x") == "x"

    def test_empty_line_raises(self):
        with pytest.raises(TraceFormatError):
            decode_record("")

    def test_malformed_field_raises(self):
        with pytest.raises(TraceFormatError):
            decode_record("C noequals")

    def test_get_ints_of_scalar(self):
        rec = decode_record("C x=5")
        assert rec.get_ints("x") == (5,)


field_values = st.one_of(
    st.integers(-2**40, 2**40),
    st.text(alphabet="ab %=\n|xyz0", max_size=10),
    st.lists(st.integers(-1000, 1000), max_size=4),
)


@given(st.dictionaries(
    st.sampled_from(["alpha", "beta", "gamma", "delta", "eps", "zeta"]),
    field_values, max_size=5))
def test_prop_record_roundtrip(fields):
    line = encode_record("C", fields)
    rec = decode_record(line)
    assert rec.kind == "C"
    for key, value in fields.items():
        decoded = rec.fields[key]
        if isinstance(value, list):
            assert decoded == tuple(value)
        else:
            assert decoded == value


@given(st.text(max_size=50))
def test_prop_escape_roundtrip(text):
    assert unescape(escape(text)) == text


@given(st.text(max_size=50))
def test_prop_escaped_has_no_separators(text):
    escaped = escape(text)
    assert " " not in escaped
    assert "=" not in escaped
    assert "\n" not in escaped
