"""2-D GlobalArray tests: strided sections, datatype-precise conflicts."""

import numpy as np
import pytest

from repro.core import check_app
from repro.ga.array2d import GlobalArray2D
from repro.simmpi import run_app


class TestSections:
    def test_put_get_roundtrip_within_owner(self):
        def app(mpi):
            ga = GlobalArray2D.create(mpi, "m", 8, 6)
            if mpi.rank == 0:
                ga.put(0, 2, 1, 4, np.arange(6).reshape(2, 3))
            ga.sync()
            section = ga.get(0, 2, 0, 6)
            ga.destroy()
            return section.tolist()

        result = run_app(app, nranks=2, delivery="lazy")[1]
        assert result == [[0, 0, 1, 2, 0, 0], [0, 3, 4, 5, 0, 0]]

    def test_section_spanning_owners(self):
        def app(mpi):
            ga = GlobalArray2D.create(mpi, "m", 9, 4)
            if mpi.rank == 0:
                values = np.arange(9 * 2).reshape(9, 2)
                ga.put(0, 9, 1, 3, values)  # crosses all three owners
            ga.sync()
            full = ga.get(0, 9, 0, 4)
            ga.destroy()
            return full

        full = run_app(app, nranks=3, delivery="lazy")[2]
        expected = np.zeros((9, 4))
        expected[:, 1:3] = np.arange(18).reshape(9, 2)
        assert np.array_equal(full, expected)

    def test_full_width_section_contiguous(self):
        def app(mpi):
            ga = GlobalArray2D.create(mpi, "m", 6, 3)
            if mpi.rank == 1:
                ga.put(2, 4, 0, 3, np.ones((2, 3)) * 5)
            ga.sync()
            out = ga.get(2, 4, 0, 3)
            ga.destroy()
            return out.tolist()

        assert run_app(app, nranks=2)[0] == [[5, 5, 5], [5, 5, 5]]

    def test_acc_sections(self):
        def app(mpi):
            ga = GlobalArray2D.create(mpi, "m", 4, 4)
            ga.acc(1, 3, 1, 3, np.ones((2, 2)))
            ga.sync()
            out = ga.get(0, 4, 0, 4)
            ga.destroy()
            return out

        out = run_app(app, nranks=4, delivery="random", seed=2)[0]
        expected = np.zeros((4, 4))
        expected[1:3, 1:3] = 4.0
        assert np.array_equal(out, expected)

    def test_bad_columns_rejected(self):
        def app(mpi):
            ga = GlobalArray2D.create(mpi, "m", 4, 4)
            ga.get(0, 2, 2, 6)

        with pytest.raises(IndexError):
            run_app(app, nranks=2)

    def test_to_numpy(self):
        def app(mpi):
            ga = GlobalArray2D.create(mpi, "m", 5, 2)
            lo, hi = ga.distribution()
            ga.set_local(np.full((hi - lo, 2), float(mpi.rank)))
            ga.sync()
            full = ga.to_numpy()
            ga.destroy()
            return full

        full = run_app(app, nranks=2)[0]
        assert full.shape == (5, 2)
        assert set(full[:, 0]) == {0.0, 1.0}


class TestDatatypePrecision:
    """The reason 2-D sections matter for the checker: conflicts are
    byte-precise over the strided data-maps."""

    @staticmethod
    def _two_writers(mpi, cols_a, cols_b):
        ga = GlobalArray2D.create(mpi, "m", 4, 8)
        if mpi.rank == 0:
            ga.put(0, 4, cols_a[0], cols_a[1], np.ones((4, cols_a[1] - cols_a[0])))
        elif mpi.rank == 1:
            ga.put(0, 4, cols_b[0], cols_b[1],
                   2 * np.ones((4, cols_b[1] - cols_b[0])))
        ga.sync()
        ga.destroy()

    def test_same_rows_disjoint_columns_clean(self):
        """Interleaved row-sections with disjoint columns: the vector
        data-maps interleave but never overlap — no conflict."""
        report = check_app(self._two_writers, nranks=3,
                           params=dict(cols_a=(0, 3), cols_b=(3, 6)),
                           delivery="random")
        assert not report.findings, report.format()

    def test_overlapping_columns_flagged(self):
        report = check_app(self._two_writers, nranks=3,
                           params=dict(cols_a=(0, 4), cols_b=(3, 6)),
                           delivery="random")
        assert report.has_errors
        # the conflict column is exactly one element wide; the deduped
        # finding keeps the first target's share (rank 0 owns 2 of the 4
        # rows -> 2 strided 8-byte intervals) and counts one occurrence
        # per owning target rank
        put_put = [f for f in report.errors
                   if {f.a.kind, f.b.kind} == {"put"}]
        assert put_put
        finding = put_put[0]
        assert finding.occurrences == 3  # rows split over 3 target ranks
        assert finding.overlap.byte_count() == 2 * 8
        assert len(finding.overlap) == 2  # strided: two disjoint intervals

    def test_local_sweep_vs_remote_section(self):
        def app(mpi):
            ga = GlobalArray2D.create(mpi, "m", 4, 4)
            if mpi.rank == 1:
                ga.put(0, 2, 0, 2, np.ones((2, 2)))  # into rank 0's rows
            elif mpi.rank == 0:
                ga.local()[0] = 9.0  # unsynchronized local store
            ga.sync()
            ga.destroy()

        report = check_app(app, nranks=2, delivery="random")
        assert report.has_errors
