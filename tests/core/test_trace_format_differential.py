"""Trace-format differential: binary (v2) traces must be analytically
indistinguishable from text traces.

Each bundled bug case is profiled twice — once per on-disk format, same
seed/schedule, so the event streams are identical — and the checker must
produce byte-identical reports (modulo wall-clock timings) across both
formats and across job counts, for the batch and the streaming pipeline.
"""

import json

import pytest

from repro.apps.registry import BUG_CASES, EXTRA_CASES
from repro.core.checker import check_traces
from repro.core.streaming import check_streaming
from repro.profiler.session import profile_run
from repro.profiler.tracer import FORMAT_BINARY, FORMAT_TEXT
from repro.tools import diff_traces

ALL_CASES = list(BUG_CASES) + list(EXTRA_CASES)
RANKS_CAP = 8
JOB_COUNTS = (1, 4)

_TRACES = {}


def traces_for(case, fmt):
    """Profile each (case, format) once and reuse across tests."""
    key = (case.name, fmt)
    if key not in _TRACES:
        nranks = min(case.nranks, RANKS_CAP)
        _TRACES[key] = profile_run(case.app, nranks,
                                   params=case.params(True),
                                   trace_format=fmt).traces
    return _TRACES[key]


def canonical(report) -> str:
    """Byte-comparable form of a report, modulo wall-clock timings."""
    payload = report.to_dict()
    payload["stats"].pop("phase_seconds")
    return json.dumps(payload, sort_keys=True)


class TestFormatDifferential:
    @pytest.mark.parametrize("case", ALL_CASES, ids=lambda c: c.name)
    def test_reports_identical_across_formats_and_jobs(self, case):
        text_traces = traces_for(case, FORMAT_TEXT)
        binary_traces = traces_for(case, FORMAT_BINARY)
        baseline = canonical(check_traces(text_traces, jobs=1))
        for traces in (text_traces, binary_traces):
            for jobs in JOB_COUNTS:
                report = check_traces(traces, jobs=jobs)
                assert canonical(report) == baseline, (
                    f"{case.name}: report diverged for "
                    f"format={traces.rank_path('', 0)} jobs={jobs}")

    @pytest.mark.parametrize("case", ALL_CASES[:3], ids=lambda c: c.name)
    def test_unified_model_identical_across_formats(self, case):
        text_traces = traces_for(case, FORMAT_TEXT)
        binary_traces = traces_for(case, FORMAT_BINARY)
        left = check_traces(text_traces, memory_model="unified")
        right = check_traces(binary_traces, memory_model="unified")
        assert canonical(left) == canonical(right)

    @pytest.mark.parametrize("case", ALL_CASES, ids=lambda c: c.name)
    def test_streaming_identical_across_formats(self, case):
        text_traces = traces_for(case, FORMAT_TEXT)
        binary_traces = traces_for(case, FORMAT_BINARY)
        text_findings, _ = check_streaming(text_traces)
        binary_findings, _ = check_streaming(binary_traces)
        assert [f.to_dict() for f in text_findings] == \
            [f.to_dict() for f in binary_findings]

    def test_recordings_are_event_identical(self):
        case = ALL_CASES[0]
        diff = diff_traces(traces_for(case, FORMAT_TEXT),
                           traces_for(case, FORMAT_BINARY))
        assert diff.identical, diff.format()

    def test_event_counts_identical_across_formats(self):
        case = ALL_CASES[0]
        assert traces_for(case, FORMAT_TEXT).event_counts() == \
            traces_for(case, FORMAT_BINARY).event_counts()
