"""Preprocessing tests: communicator, window, and datatype registries."""

import pytest

from repro.core.preprocess import preprocess
from repro.profiler.session import profile_run
from repro.simmpi import DOUBLE, INT
from repro.util.errors import AnalysisError


def run_and_preprocess(app, nranks, **kw):
    return preprocess(profile_run(app, nranks, **kw).traces)


class TestCommunicators:
    def test_world_always_present(self):
        pre = run_and_preprocess(lambda mpi: mpi.barrier(), 3)
        assert pre.comms[0] == (0, 1, 2)

    def test_comm_split_membership_and_order(self):
        def app(mpi):
            mpi.comm_split(color=mpi.rank % 2, key=-mpi.rank)

        pre = run_and_preprocess(app, 4)
        # two new comms; members ordered by key (negated rank) descending
        new = [pre.comms[c] for c in sorted(pre.comms) if c != 0]
        assert sorted(map(sorted, new)) == [[0, 2], [1, 3]]
        for members in new:
            assert list(members) == sorted(members, reverse=True)

    def test_comm_split_undefined_color(self):
        def app(mpi):
            mpi.comm_split(color=-1 if mpi.rank == 0 else 5)

        pre = run_and_preprocess(app, 3)
        new = [pre.comms[c] for c in pre.comms if c != 0]
        assert new == [(1, 2)]

    def test_comm_dup_inherits_members(self):
        def app(mpi):
            mpi.comm_dup()

        pre = run_and_preprocess(app, 3)
        assert pre.comms[1] == (0, 1, 2)

    def test_nested_split(self):
        def app(mpi):
            sub = mpi.comm_split(color=mpi.rank // 2, key=mpi.rank)
            mpi.comm_split(color=0, key=-mpi.rank, comm=sub)

        pre = run_and_preprocess(app, 4)
        grand = [pre.comms[c] for c in sorted(pre.comms)][3:]
        assert sorted(map(tuple, grand)) == [(1, 0), (3, 2)]

    def test_comm_create_group(self):
        def app(mpi):
            group = mpi.comm_group().incl([2, 0])
            mpi.comm_create(group)

        pre = run_and_preprocess(app, 3)
        assert pre.comms[1] == (2, 0)

    def test_world_of_comm_rank(self):
        pre = run_and_preprocess(lambda mpi: mpi.barrier(), 4)
        assert pre.world_of_comm_rank(0, 3) == 3
        with pytest.raises(AnalysisError):
            pre.world_of_comm_rank(0, 4)
        with pytest.raises(AnalysisError):
            pre.comm_members(99)


class TestWindows:
    def test_window_registry(self):
        def app(mpi):
            buf = mpi.alloc("buf", 4, datatype=DOUBLE)
            win = mpi.win_create(buf)
            win.fence()
            win.free()

        pre = run_and_preprocess(app, 2)
        info = pre.window(0)
        assert info.comm_id == 0
        assert info.sizes == {0: 32, 1: 32}
        assert info.disp_units == {0: 8, 1: 8}
        assert info.var_names == {0: "buf", 1: "buf"}

    def test_exposure_intervals(self):
        def app(mpi):
            buf = mpi.alloc("buf", 2, datatype=INT)
            win = mpi.win_create(buf)
            win.fence()
            win.free()

        pre = run_and_preprocess(app, 2)
        exposure = pre.window(0).exposure(1)
        assert exposure.byte_count() == 8

    def test_rank_without_memory(self):
        def app(mpi):
            buf = mpi.alloc("buf", 2, datatype=INT) if mpi.rank == 0 else None
            win = mpi.win_create(buf)
            win.fence()
            win.free()

        pre = run_and_preprocess(app, 2)
        assert not pre.window(0).exposure(1)

    def test_unknown_window(self):
        pre = run_and_preprocess(lambda mpi: mpi.barrier(), 2)
        with pytest.raises(AnalysisError):
            pre.window(5)


class TestDatatypes:
    def test_primitives_preloaded(self):
        pre = run_and_preprocess(lambda mpi: mpi.barrier(), 1)
        assert pre.datatype(0, -4).name == "INT"

    def test_derived_replay_matches_runtime(self):
        built = {}

        def app(mpi):
            t1 = mpi.type_contiguous(3, INT)
            t2 = mpi.type_vector(2, 1, 2, t1)
            t3 = mpi.type_indexed([1, 2], [0, 4], INT)
            t4 = mpi.type_struct([1, 1], [0, 16], [t2, INT])
            if mpi.rank == 0:
                built.update({t.type_id: t for t in (t1, t2, t3, t4)})

        pre = run_and_preprocess(app, 2)
        for type_id, runtime_type in built.items():
            replayed = pre.datatype(0, type_id)
            assert replayed.datamap == runtime_type.datamap
            assert replayed.extent == runtime_type.extent
            assert replayed.base == runtime_type.base

    def test_per_rank_registries_independent(self):
        def app(mpi):
            if mpi.rank == 0:
                mpi.type_contiguous(2, INT)
            else:
                mpi.type_contiguous(5, DOUBLE)
            mpi.barrier()

        pre = run_and_preprocess(app, 2)
        assert pre.datatype(0, 0).size == 8
        assert pre.datatype(1, 0).size == 40

    def test_unknown_datatype(self):
        pre = run_and_preprocess(lambda mpi: mpi.barrier(), 1)
        with pytest.raises(AnalysisError):
            pre.datatype(0, 17)
