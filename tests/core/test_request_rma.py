"""MPI-3 request-based RMA (Rput/Rget/Raccumulate) — runtime + checker."""

import pytest

from repro.core import check_app
from repro.simmpi import DOUBLE, INT, LOCK_SHARED, run_app


class TestRuntime:
    def test_rput_wait_completes(self):
        def app(mpi):
            buf = mpi.alloc("buf", 1, datatype=INT, fill=0)
            src = mpi.alloc("src", 1, datatype=INT, fill=1)
            win = mpi.win_create(buf)
            mpi.barrier()
            if mpi.rank == 0:
                win.lock(1, LOCK_SHARED)
                req = win.rput(src, target=1, origin_count=1)
                req.wait()          # completes NOW, not at unlock
                src[0] = 99         # safe after wait
                mpi.send("done", dest=1)
                mpi.recv(source=1)
                win.unlock(1)
                observed = None
            else:
                mpi.recv(source=0)
                observed = buf[0]   # must be the pre-overwrite value
                mpi.send("seen", dest=0)
            mpi.barrier()
            win.free()
            return observed

        assert run_app(app, nranks=2, delivery="lazy")[1] == 1

    def test_rget_wait_makes_data_readable(self):
        def app(mpi):
            buf = mpi.alloc("buf", 1, datatype=INT, fill=5 * (mpi.rank + 1))
            dst = mpi.alloc("dst", 1, datatype=INT, fill=0)
            win = mpi.win_create(buf)
            mpi.barrier()
            value = None
            if mpi.rank == 0:
                win.lock(1, LOCK_SHARED)
                req = win.rget(dst, target=1, origin_count=1)
                req.wait()
                value = dst[0]      # defined after the wait
                win.unlock(1)
            mpi.barrier()
            win.free()
            return value

        assert run_app(app, nranks=2, delivery="lazy")[0] == 10

    def test_wait_is_idempotent_and_test_completes(self):
        def app(mpi):
            buf = mpi.alloc("buf", 1, datatype=INT, fill=0)
            src = mpi.alloc("src", 1, datatype=INT, fill=3)
            win = mpi.win_create(buf)
            mpi.barrier()
            if mpi.rank == 0:
                win.lock(1, LOCK_SHARED)
                req = win.rput(src, target=1, origin_count=1)
                assert req.test() is True
                req.wait()
                req.wait()
                win.unlock(1)
            mpi.barrier()
            out = buf[0]
            win.free()
            return out

        assert run_app(app, nranks=2, delivery="lazy")[1] == 3

    def test_raccumulate(self):
        def app(mpi):
            buf = mpi.alloc("buf", 1, datatype=DOUBLE, fill=0.0)
            src = mpi.alloc("src", 1, datatype=DOUBLE, fill=2.0)
            win = mpi.win_create(buf)
            mpi.barrier()
            if mpi.rank != 0:
                win.lock(0, LOCK_SHARED)
                req = win.raccumulate(src, target=0, op="SUM",
                                      origin_count=1)
                req.wait()
                win.unlock(0)
            mpi.barrier()
            out = buf[0]
            win.free()
            return out

        assert run_app(app, nranks=4, delivery="lazy")[0] == 6.0

    def test_wait_preserves_issue_order(self):
        """Waiting on the second request applies the first one too."""
        def app(mpi):
            buf = mpi.alloc("buf", 1, datatype=INT, fill=0)
            one = mpi.alloc("one", 1, datatype=INT, fill=1)
            two = mpi.alloc("two", 1, datatype=INT, fill=2)
            win = mpi.win_create(buf)
            mpi.barrier()
            if mpi.rank == 0:
                win.lock(1, LOCK_SHARED)
                win.rput(one, target=1, origin_count=1)
                req2 = win.rput(two, target=1, origin_count=1)
                req2.wait()  # both land; issue order preserved
                win.unlock(1)
            mpi.barrier()
            out = buf[0]
            win.free()
            return out

        assert run_app(app, nranks=2, delivery="lazy")[1] == 2


class TestChecker:
    def test_access_after_wait_clean(self):
        def app(mpi):
            buf = mpi.alloc("buf", 1, datatype=INT, fill=0)
            src = mpi.alloc("src", 1, datatype=INT, fill=1)
            win = mpi.win_create(buf)
            mpi.barrier()
            if mpi.rank == 0:
                win.lock(1, LOCK_SHARED)
                req = win.rput(src, target=1, origin_count=1)
                req.wait()
                src[0] = 99  # after the request completed: ordered
                win.unlock(1)
            mpi.barrier()
            win.free()

        report = check_app(app, nranks=2)
        assert not report.findings, report.format()

    def test_access_before_wait_flagged(self):
        def app(mpi):
            buf = mpi.alloc("buf", 1, datatype=INT, fill=0)
            src = mpi.alloc("src", 1, datatype=INT, fill=1)
            win = mpi.win_create(buf)
            mpi.barrier()
            if mpi.rank == 0:
                win.lock(1, LOCK_SHARED)
                req = win.rput(src, target=1, origin_count=1)
                src[0] = 99  # BEFORE the wait: races with the Rput
                req.wait()
                win.unlock(1)
            mpi.barrier()
            win.free()

        report = check_app(app, nranks=2)
        assert report.has_errors
        fns = {report.errors[0].a.fn, report.errors[0].b.fn}
        assert "Rput" in fns

    def test_rget_read_before_wait_flagged(self):
        def app(mpi):
            buf = mpi.alloc("buf", 1, datatype=INT, fill=5)
            dst = mpi.alloc("dst", 1, datatype=INT, fill=0)
            win = mpi.win_create(buf)
            mpi.barrier()
            if mpi.rank == 0:
                win.lock(1, LOCK_SHARED)
                req = win.rget(dst, target=1, origin_count=1)
                _ = dst[0]  # undefined until the wait
                req.wait()
                win.unlock(1)
            mpi.barrier()
            win.free()

        report = check_app(app, nranks=2)
        assert report.has_errors

    def test_same_epoch_rputs_ordered_by_wait(self):
        """Two overlapping Rputs where the first is waited before the
        second issues: consistency-ordered, no race."""
        def app(mpi, use_wait):
            buf = mpi.alloc("buf", 1, datatype=INT, fill=0)
            src = mpi.alloc("src", 1, datatype=INT, fill=1)
            win = mpi.win_create(buf)
            mpi.barrier()
            if mpi.rank == 0:
                win.lock(1, LOCK_SHARED)
                req = win.rput(src, target=1, origin_count=1)
                if use_wait:
                    req.wait()
                win.put(src, target=1, origin_count=1)
                win.unlock(1)
            mpi.barrier()
            win.free()

        flagged = check_app(app, nranks=2, params=dict(use_wait=False))
        clean = check_app(app, nranks=2, params=dict(use_wait=True))
        assert flagged.has_errors
        assert not clean.findings, clean.format()
