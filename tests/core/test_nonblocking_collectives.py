"""MPI-3 nonblocking collectives: runtime semantics and the analysis the
paper's section V lists as omitted from its implementation."""

import pytest

from repro.core import check_app
from repro.core.clocks import ConcurrencyOracle
from repro.core.matching import match_synchronization
from repro.core.preprocess import preprocess
from repro.profiler.events import CallEvent
from repro.profiler.session import profile_run
from repro.simmpi import DOUBLE, INT, LOCK_SHARED, run_app


class TestRuntime:
    def test_ibarrier_completes(self):
        def app(mpi):
            req = mpi.ibarrier()
            mpi.wait(req)
            return mpi.rank

        assert run_app(app, nranks=3) == [0, 1, 2]

    def test_ibarrier_allows_work_before_wait(self):
        order = []

        def app(mpi):
            req = mpi.ibarrier()
            order.append(("pre-wait", mpi.rank))  # not blocked by others
            mpi.wait(req)
            order.append(("post-wait", mpi.rank))

        run_app(app, nranks=2)
        assert ("pre-wait", 0) in order and ("post-wait", 1) in order

    def test_ibcast_lands_at_wait(self):
        def app(mpi):
            buf = mpi.alloc("buf", 2, datatype=INT,
                            fill=7 if mpi.rank == 0 else 0)
            req = mpi.ibcast(buf, root=0)
            before = buf.read().tolist() if mpi.rank != 0 else None
            mpi.wait(req)
            after = buf.read().tolist()
            return before, after

        results = run_app(app, nranks=3)
        assert results[1] == ([0, 0], [7, 7])

    def test_mixed_blocking_and_nonblocking_collectives(self):
        def app(mpi):
            req = mpi.ibarrier()
            mpi.barrier()  # a blocking collective between init and wait
            mpi.wait(req)
            return mpi.allreduce([1], op="SUM")[0]

        assert list(run_app(app, nranks=3)) == [3, 3, 3]


class TestHappensBefore:
    def _app(self, mpi):
        mpi.comm_rank()          # pre-init marker
        req = mpi.ibarrier()
        mpi.comm_rank()          # between init and wait: NOT synchronized
        mpi.wait(req)
        mpi.comm_rank()          # post-wait marker

    def _oracle(self):
        pre = preprocess(profile_run(self._app, 2).traces)
        matches = match_synchronization(pre)
        return pre, ConcurrencyOracle(pre, matches)

    @staticmethod
    def _seqs(pre, rank, fn):
        return [e.seq for e in pre.events[rank]
                if isinstance(e, CallEvent) and e.fn == fn]

    def test_pre_init_orders_before_post_wait(self):
        pre, oracle = self._oracle()
        pre0 = self._seqs(pre, 0, "Comm_rank")[0]
        post1 = self._seqs(pre, 1, "Comm_rank")[2]
        assert oracle.happens_before(0, pre0, 1, post1)

    def test_between_init_and_wait_not_synchronized(self):
        """The defining nonblocking property: work between initiation and
        Wait is concurrent with the other ranks' pre-barrier work."""
        pre, oracle = self._oracle()
        mid0 = self._seqs(pre, 0, "Comm_rank")[1]
        mid1 = self._seqs(pre, 1, "Comm_rank")[1]
        pre1 = self._seqs(pre, 1, "Comm_rank")[0]
        assert not oracle.happens_before(0, mid0, 1, mid1)
        assert not oracle.happens_before(1, pre1, 0, mid0)

    def test_pre_init_not_ordered_to_mid_region(self):
        pre, oracle = self._oracle()
        pre0 = self._seqs(pre, 0, "Comm_rank")[0]
        mid1 = self._seqs(pre, 1, "Comm_rank")[1]
        assert not oracle.happens_before(0, pre0, 1, mid1)


class TestDetection:
    def _rma_app(self, mpi, access_before_wait):
        buf = mpi.alloc("buf", 2, datatype=DOUBLE)
        src = mpi.alloc("src", 1, datatype=DOUBLE)
        win = mpi.win_create(buf)
        mpi.barrier()
        if mpi.rank == 0:
            win.lock(1, LOCK_SHARED)
            win.put(src, target=1, origin_count=1)
            win.unlock(1)
        req = mpi.ibarrier()
        if mpi.rank == 1 and access_before_wait:
            buf[0] = 3.0  # before the wait: NOT ordered after the Put
        mpi.wait(req)
        if mpi.rank == 1 and not access_before_wait:
            buf[0] = 3.0  # after the wait: ordered
        mpi.barrier()
        win.free()

    def test_access_after_wait_clean(self):
        report = check_app(self._rma_app, nranks=2,
                           params=dict(access_before_wait=False))
        assert not report.findings, report.format()

    def test_access_before_wait_flagged(self):
        report = check_app(self._rma_app, nranks=2,
                           params=dict(access_before_wait=True))
        assert report.has_errors

    def test_ibarrier_not_a_region_cut(self):
        """A nonblocking barrier must not truncate concurrent regions the
        way a blocking one does."""
        from repro.core.regions import RegionIndex

        def app(mpi):
            mpi.barrier()
            req = mpi.ibarrier()
            mpi.wait(req)
            mpi.barrier()

        pre = preprocess(profile_run(app, 2).traces)
        matches = match_synchronization(pre)
        regions = RegionIndex(pre, matches)
        assert len(regions) == 3  # only the two blocking barriers cut
