"""Shared helpers for DN-Analyzer tests: run apps, get pipeline objects."""

import pytest

from repro.core.clocks import ConcurrencyOracle
from repro.core.epochs import EpochIndex
from repro.core.matching import match_synchronization
from repro.core.model import build_access_model
from repro.core.preprocess import preprocess
from repro.core.regions import RegionIndex
from repro.profiler.session import profile_run


class Pipeline:
    """All analysis stages for one profiled run, built lazily."""

    def __init__(self, app, nranks, params=None, **run_kwargs):
        run_kwargs.setdefault("delivery", "random")
        self.run = profile_run(app, nranks, params=params, **run_kwargs)
        self.pre = preprocess(self.run.traces)
        self.matches = match_synchronization(self.pre)
        self.oracle = ConcurrencyOracle(self.pre, self.matches)
        self.epochs = EpochIndex(self.pre)
        self.model = build_access_model(self.pre, self.epochs)
        self.regions = RegionIndex(self.pre, self.matches)


@pytest.fixture
def pipeline():
    return Pipeline
