"""Happens-before oracle tests, incl. differential testing against the DAG."""

import random

import pytest

from repro.core.clocks import ConcurrencyOracle, Span
from repro.core.dag import build_dag, event_node, happens_before
from repro.core.epochs import EpochIndex
from repro.core.matching import match_synchronization
from repro.core.preprocess import preprocess
from repro.profiler.events import CallEvent, RMA_COMM_CALLS, MemEvent
from repro.profiler.session import profile_run
from repro.simmpi import INT


def build(app, nranks, **kw):
    kw.setdefault("delivery", "random")
    pre = preprocess(profile_run(app, nranks, **kw).traces)
    matches = match_synchronization(pre)
    return pre, matches, ConcurrencyOracle(pre, matches)


class TestPointQueries:
    def test_program_order_same_rank(self):
        pre, _m, oracle = build(lambda mpi: mpi.barrier(), 2)
        assert oracle.happens_before(0, 0, 0, 5)
        assert not oracle.happens_before(0, 5, 0, 0)

    def test_barrier_orders_across_ranks(self):
        def app(mpi):
            mpi.alloc("x", 1, datatype=INT)  # pre-barrier activity
            mpi.barrier()
            mpi.comm_rank()  # post-barrier activity

        pre, _m, oracle = build(app, 2)
        barrier_seq = {
            rank: next(e.seq for e in pre.events[rank]
                       if isinstance(e, CallEvent) and e.fn == "Barrier")
            for rank in (0, 1)
        }
        before0 = barrier_seq[0] - 1
        after1 = barrier_seq[1] + 1
        assert oracle.happens_before(0, before0, 1, after1)
        assert not oracle.happens_before(1, after1, 0, before0)

    def test_unsynchronized_ranks_concurrent(self):
        def app(mpi):
            mpi.comm_rank()
            mpi.comm_rank()

        pre, _m, oracle = build(app, 2)
        assert not oracle.happens_before(0, 0, 1, 1)
        assert not oracle.happens_before(1, 0, 0, 1)

    def test_send_recv_one_directional(self):
        def app(mpi):
            if mpi.rank == 0:
                mpi.comm_rank()
                mpi.send("x", dest=1)
            else:
                mpi.recv(source=0)
                mpi.comm_rank()

        pre, _m, oracle = build(app, 2)
        send_seq = next(e.seq for e in pre.events[0]
                        if isinstance(e, CallEvent) and e.fn == "Send")
        recv_seq = next(e.seq for e in pre.events[1]
                        if isinstance(e, CallEvent) and e.fn == "Recv")
        assert oracle.happens_before(0, send_seq, 1, recv_seq)
        assert oracle.happens_before(0, 0, 1, recv_seq + 1)
        # the reverse direction carries no ordering
        assert not oracle.happens_before(1, recv_seq, 0, send_seq)


class TestPSCWEdges:
    def _pscw_app(self, mpi):
        from repro.simmpi import INT
        buf = mpi.alloc("buf", 1, datatype=INT)
        win = mpi.win_create(buf)
        world = mpi.comm_group()
        mpi.comm_rank()  # pre-PSCW marker event on both ranks
        if mpi.rank == 0:
            win.post(world.incl([1]))
            win.wait()
            mpi.comm_rank()  # post-wait marker
        else:
            win.start(world.incl([0]))
            win.complete()
            mpi.comm_rank()  # post-complete marker
        mpi.barrier()
        win.free()

    def test_post_happens_before_post_start_successors(self):
        pre, _m, oracle = build(self._pscw_app, 2)
        post_seq = next(e.seq for e in pre.events[0]
                        if isinstance(e, CallEvent) and e.fn == "Win_post")
        start_seq = next(e.seq for e in pre.events[1]
                         if isinstance(e, CallEvent)
                         and e.fn == "Win_start")
        # everything before the post precedes everything after the start
        assert oracle.happens_before(0, post_seq - 1, 1, start_seq + 1)
        # but not the other way around
        assert not oracle.happens_before(1, start_seq, 0, post_seq)

    def test_complete_happens_before_wait_successors(self):
        pre, _m, oracle = build(self._pscw_app, 2)
        complete_seq = next(e.seq for e in pre.events[1]
                            if isinstance(e, CallEvent)
                            and e.fn == "Win_complete")
        wait_seq = next(e.seq for e in pre.events[0]
                        if isinstance(e, CallEvent) and e.fn == "Win_wait")
        assert oracle.happens_before(1, complete_seq, 0, wait_seq)
        assert oracle.happens_before(1, complete_seq - 1, 0, wait_seq + 1)
        assert not oracle.happens_before(0, wait_seq, 1, complete_seq)

    def test_pre_pscw_events_concurrent(self):
        pre, _m, oracle = build(self._pscw_app, 2)
        # the pre-PSCW markers on the two ranks are unordered (no sync
        # between the initial collective and the markers themselves)
        marker0 = next(e.seq for e in pre.events[0]
                       if isinstance(e, CallEvent)
                       and e.fn == "Comm_rank")
        post_seq = next(e.seq for e in pre.events[0]
                        if isinstance(e, CallEvent) and e.fn == "Win_post")
        start_seq = next(e.seq for e in pre.events[1]
                         if isinstance(e, CallEvent)
                         and e.fn == "Win_start")
        # post itself is not ordered after rank 1's start
        assert not oracle.happens_before(1, start_seq, 0, post_seq)


class TestSpans:
    def test_point_spans_same_rank_ordered(self):
        pre, _m, oracle = build(lambda mpi: mpi.barrier(), 2)
        assert oracle.ordered(Span.point(0, 1), Span.point(0, 2))

    def test_same_epoch_rma_spans_concurrent(self):
        # spans [2, 9] and [5, 9] at one rank overlap -> unordered
        pre, _m, oracle = build(lambda mpi: mpi.barrier(), 2)
        assert oracle.concurrent(Span(0, 2, 9), Span(0, 5, 9))

    def test_store_inside_op_span_concurrent(self):
        pre, _m, oracle = build(lambda mpi: mpi.barrier(), 2)
        assert oracle.concurrent(Span(0, 2, 9), Span.point(0, 5))

    def test_store_before_issue_ordered(self):
        pre, _m, oracle = build(lambda mpi: mpi.barrier(), 2)
        assert oracle.ordered(Span.point(0, 1), Span(0, 2, 9))


def _random_workload(seed):
    def app(mpi):
        rng = random.Random(900 + seed)
        for _ in range(10):
            action = rng.choice(["barrier", "p2p", "local"])
            if action == "barrier":
                mpi.barrier()
            elif action == "p2p":
                src = rng.randrange(mpi.size)
                dst = (src + 1) % mpi.size
                if mpi.rank == src:
                    mpi.send("m", dest=dst, tag=0)
                elif mpi.rank == dst:
                    mpi.recv(source=src, tag=0)
            else:
                mpi.comm_rank()
    return app


def _random_spans(pre, rng, n):
    max_seq = max(len(events) for events in pre.events.values()) + 4
    spans = []
    for _ in range(n):
        rank = rng.randrange(pre.nranks)
        a, b = rng.randrange(max_seq), rng.randrange(max_seq)
        lo, hi = min(a, b), max(a, b)
        if rng.random() < 0.1:
            hi = 1 << 60  # open-ended epoch span
        spans.append(Span(rank, lo, hi))
    return spans


class TestBatchedQueries:
    """``ordered_batch`` must agree with pairwise ``ordered`` everywhere —
    it is the inner loop of the batched cross-process detector."""

    @pytest.mark.parametrize("seed", range(3))
    def test_ordered_batch_matches_pairwise(self, seed):
        pre, _m, oracle = build(_random_workload(seed), 3, seed=seed)
        rng = random.Random(seed)
        spans = _random_spans(pre, rng, 60)
        for b in _random_spans(pre, rng, 20):
            expected = [oracle.ordered(s, b) for s in spans]
            assert oracle.ordered_spans(spans, b).tolist() == expected

    def test_pickle_roundtrip_preserves_answers(self):
        import pickle

        pre, _m, oracle = build(_random_workload(0), 3, seed=0)
        clone = pickle.loads(pickle.dumps(oracle))
        rng = random.Random(7)
        spans = _random_spans(pre, rng, 40)
        for b in _random_spans(pre, rng, 10):
            assert (clone.ordered_spans(spans, b).tolist()
                    == oracle.ordered_spans(spans, b).tolist())
        for a_rank in range(pre.nranks):
            for b_rank in range(pre.nranks):
                for a_seq in range(0, 12, 3):
                    for b_seq in range(0, 12, 3):
                        assert (clone.happens_before(a_rank, a_seq,
                                                     b_rank, b_seq)
                                == oracle.happens_before(a_rank, a_seq,
                                                         b_rank, b_seq))


class TestDifferentialAgainstDAG:
    """The vector-clock oracle must agree with Figure-4 DAG reachability on
    every non-RMA event pair (RMA vertices deliberately diverge: the DAG
    hangs them between epoch boundaries)."""

    @pytest.mark.parametrize("seed", range(3))
    def test_agreement_random_workload(self, seed):
        def app(mpi):
            rng = random.Random(500 + seed)
            for _ in range(8):
                action = rng.choice(["barrier", "p2p", "subbarrier",
                                     "local"])
                if action == "barrier":
                    mpi.barrier()
                elif action == "subbarrier":
                    sub_members = sorted(rng.sample(range(mpi.size), 2))
                    color = 0 if mpi.rank in sub_members else -1
                    sub = mpi.comm_split(color=color, key=mpi.rank)
                    if sub is not None:
                        mpi.barrier(comm=sub)
                elif action == "p2p":
                    src = rng.randrange(mpi.size)
                    dst = (src + 1) % mpi.size
                    if mpi.rank == src:
                        mpi.send("m", dest=dst, tag=0)
                    elif mpi.rank == dst:
                        mpi.recv(source=src, tag=0)
                else:
                    mpi.comm_rank()

        pre, matches, oracle = build(app, 3, seed=seed)
        epochs = EpochIndex(pre)
        dag = build_dag(pre, matches, epochs)

        nodes = [
            (rank, e.seq) for rank in range(pre.nranks)
            for e in pre.events[rank]
            if not (isinstance(e, CallEvent) and e.fn in RMA_COMM_CALLS)
        ]
        rng = random.Random(seed)
        samples = rng.sample(nodes, min(len(nodes), 25))
        for a_rank, a_seq in samples:
            for b_rank, b_seq in samples:
                if (a_rank, a_seq) == (b_rank, b_seq):
                    continue
                expected = happens_before(dag, event_node(a_rank, a_seq),
                                          event_node(b_rank, b_seq))
                actual = oracle.happens_before(a_rank, a_seq, b_rank, b_seq)
                assert actual == expected, (
                    f"oracle={actual} dag={expected} for "
                    f"({a_rank},{a_seq}) -> ({b_rank},{b_seq})")
