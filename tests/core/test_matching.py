"""Synchronization matching tests (Algorithm 1) + differential testing."""

import pytest

from repro.core.matching import (
    KIND_COLLECTIVE, KIND_COMPLETE_WAIT, KIND_P2P, KIND_POST_START,
    match_synchronization, match_synchronization_naive,
)
from repro.core.preprocess import preprocess
from repro.profiler.session import profile_run
from repro.simmpi import ANY_SOURCE, ANY_TAG, INT


def matches_for(app, nranks, **kw):
    kw.setdefault("delivery", "random")
    pre = preprocess(profile_run(app, nranks, **kw).traces)
    return pre, match_synchronization(pre)


def by_kind(matches, kind):
    return [m for m in matches if m.kind == kind]


class TestCollectives:
    def test_barrier_match_covers_all_ranks(self):
        pre, matches = matches_for(lambda mpi: mpi.barrier(), 4)
        colls = by_kind(matches, KIND_COLLECTIVE)
        barrier = [m for m in colls if m.fn == "Barrier"]
        assert len(barrier) == 1
        assert set(barrier[0].members) == {0, 1, 2, 3}

    def test_repeated_barriers_match_in_order(self):
        def app(mpi):
            for _ in range(3):
                mpi.barrier()

        pre, matches = matches_for(app, 2)
        barriers = [m for m in matches if m.fn == "Barrier"]
        assert len(barriers) == 3
        # k-th barrier at rank 0 pairs with k-th at rank 1
        seqs0 = [m.members[0] for m in barriers]
        seqs1 = [m.members[1] for m in barriers]
        assert seqs0 == sorted(seqs0) and seqs1 == sorted(seqs1)

    def test_fence_matches_on_window_comm(self):
        def app(mpi):
            buf = mpi.alloc("buf", 1, datatype=INT)
            win = mpi.win_create(buf)
            win.fence()
            win.fence()
            win.free()

        pre, matches = matches_for(app, 3)
        fences = [m for m in matches if m.fn == "Win_fence"]
        assert len(fences) == 2
        assert all(len(m.members) == 3 for m in fences)
        assert all(m.win_id == 0 for m in fences)

    def test_subcomm_collective_matches_members_only(self):
        def app(mpi):
            sub = mpi.comm_split(color=mpi.rank % 2, key=mpi.rank)
            mpi.barrier(comm=sub)

        pre, matches = matches_for(app, 4)
        barriers = [m for m in matches if m.fn == "Barrier"]
        memberships = sorted(tuple(sorted(m.members)) for m in barriers)
        assert memberships == [(0, 2), (1, 3)]

    def test_is_global_flag(self):
        def app(mpi):
            sub = mpi.comm_split(color=mpi.rank % 2, key=mpi.rank)
            mpi.barrier(comm=sub)
            mpi.barrier()

        pre, matches = matches_for(app, 4)
        barriers = [m for m in matches if m.fn == "Barrier"]
        assert sorted(m.is_global(4) for m in barriers) == \
            [False, False, True]


class TestP2P:
    def test_send_recv_pair(self):
        def app(mpi):
            if mpi.rank == 0:
                mpi.send("x", dest=1, tag=5)
            else:
                mpi.recv(source=0, tag=5)

        pre, matches = matches_for(app, 2)
        p2p = by_kind(matches, KIND_P2P)
        assert len(p2p) == 1
        assert p2p[0].src[0] == 0 and p2p[0].dst[0] == 1

    def test_wildcard_recv_resolved(self):
        def app(mpi):
            if mpi.rank == 0:
                for _ in range(2):
                    mpi.recv(source=ANY_SOURCE, tag=ANY_TAG)
            else:
                mpi.send("m", dest=0, tag=mpi.rank)

        pre, matches = matches_for(app, 3)
        p2p = by_kind(matches, KIND_P2P)
        assert len(p2p) == 2
        assert {m.src[0] for m in p2p} == {1, 2}
        assert all(m.dst[0] == 0 for m in p2p)

    def test_fifo_same_channel(self):
        def app(mpi):
            if mpi.rank == 0:
                for i in range(4):
                    mpi.send(i, dest=1, tag=0)
            else:
                for i in range(4):
                    mpi.recv(source=0, tag=0)

        pre, matches = matches_for(app, 2)
        p2p = sorted(by_kind(matches, KIND_P2P), key=lambda m: m.src[1])
        dst_seqs = [m.dst[1] for m in p2p]
        assert dst_seqs == sorted(dst_seqs)  # k-th send -> k-th recv

    def test_isend_wait_irecv_matched(self):
        def app(mpi):
            if mpi.rank == 0:
                req = mpi.isend("x", dest=1, tag=2)
                mpi.wait(req)
            else:
                req = mpi.irecv(source=0, tag=2)
                mpi.wait(req)

        pre, matches = matches_for(app, 2)
        p2p = by_kind(matches, KIND_P2P)
        assert len(p2p) == 1
        # destination endpoint is the Wait event completing the irecv
        dst_rank, dst_seq = p2p[0].dst
        events = {e.seq: e for e in pre.events[dst_rank]}
        assert events[dst_seq].fn == "Wait"

    def test_unreceived_send_partial_match(self):
        def app(mpi):
            if mpi.rank == 0:
                mpi.send("lost", dest=1, tag=9)
            mpi.barrier()

        pre, matches = matches_for(app, 2)
        p2p = by_kind(matches, KIND_P2P)
        assert len(p2p) == 1
        assert p2p[0].dst is None


class TestPSCW:
    def test_post_start_complete_wait_edges(self):
        def app(mpi):
            buf = mpi.alloc("buf", 1, datatype=INT)
            win = mpi.win_create(buf)
            world = mpi.comm_group()
            if mpi.rank == 0:
                win.post(world.incl([1, 2]))
                win.wait()
            else:
                win.start(world.incl([0]))
                win.complete()
            mpi.barrier()
            win.free()

        pre, matches = matches_for(app, 3)
        ps = by_kind(matches, KIND_POST_START)
        cw = by_kind(matches, KIND_COMPLETE_WAIT)
        assert len(ps) == 2 and len(cw) == 2
        assert {m.dst[0] for m in ps} == {1, 2}  # post -> each starter
        assert {m.src[0] for m in cw} == {1, 2}  # each completer -> wait
        assert all(m.dst[0] == 0 for m in cw)


class TestDifferential:
    """Algorithm 1 must agree with the scan-from-the-beginning strawman."""

    @pytest.mark.parametrize("seed", range(4))
    def test_matches_agree_on_random_workload(self, seed):
        import random

        def app(mpi):
            rng = random.Random(1000 + seed)  # same program on all ranks
            for _ in range(12):
                action = rng.choice(["barrier", "p2p", "bcast"])
                if action == "barrier":
                    mpi.barrier()
                elif action == "bcast":
                    mpi.bcast("x" if mpi.rank == 0 else None, root=0)
                else:
                    src = rng.randrange(mpi.size)
                    dst = (src + 1) % mpi.size
                    if mpi.rank == src:
                        mpi.send("m", dest=dst, tag=1)
                    elif mpi.rank == dst:
                        mpi.recv(source=src, tag=1)

        pre, fast = matches_for(app, 3, seed=seed)
        naive = match_synchronization_naive(pre)

        def canonical(matches):
            out = set()
            for m in matches:
                if m.kind == KIND_COLLECTIVE:
                    out.add(("coll", m.fn, tuple(sorted(m.members.items()))))
                elif m.kind == KIND_P2P:
                    out.add(("p2p", m.src, m.dst))
            return out

        assert canonical(fast) == canonical(naive)
