"""The paper's section V discusses sources of false positives/negatives.
This module pins down how the reproduction behaves on each.

* **Indirect (transitive) synchronization** — the paper captures only
  "direct process-to-process synchronization" and admits that
  send/recv chains "through several different processes" are a potential
  false-positive source.  The vector-clock oracle here is transitive by
  construction, so those chains ARE honoured — an improvement the tests
  document.
* **Pointer aliasing through memory copies** — a potential false-negative
  source the paper acknowledges; reproduced here: ST-Analyzer misses a
  buffer laundered through an untracked copy, and the test demonstrates
  the resulting silent miss (with the dynamic window-buffer refinement
  narrowing it).
* **Invalid MPI usage** — out of scope for MC-Checker (delegated to the
  MPI implementation/Marmot); the simulator raises ``RMAUsageError``
  before any analysis runs.
"""

import pytest

from repro.core import check_app
from repro.simmpi import DOUBLE, LOCK_SHARED


class TestTransitiveOrdering:
    """a -> send -> recv/send -> recv -> b across three ranks."""

    @staticmethod
    def _chain_app(mpi, use_chain):
        buf = mpi.alloc("buf", 2, datatype=DOUBLE)
        src = mpi.alloc("src", 2, datatype=DOUBLE)
        win = mpi.win_create(buf)
        mpi.barrier()
        if mpi.rank == 0:
            win.lock(2, LOCK_SHARED)
            win.put(src, target=2)
            win.unlock(2)
            if use_chain:
                mpi.send("done", dest=1, tag=1)
        elif mpi.rank == 1:
            if use_chain:
                mpi.recv(source=0, tag=1)
                mpi.send("relay", dest=2, tag=2)  # indirect relay
        elif mpi.rank == 2:
            if use_chain:
                mpi.recv(source=1, tag=2)
            buf[0] = 7.0  # store into own window
        mpi.barrier()
        win.free()

    def test_relay_chain_orders_accesses(self):
        """The paper's admitted false positive does not occur here: the
        0->1->2 message chain transitively orders the Put before the
        store."""
        report = check_app(self._chain_app, nranks=3,
                           params=dict(use_chain=True))
        assert not report.findings

    def test_without_chain_race_remains(self):
        report = check_app(self._chain_app, nranks=3,
                           params=dict(use_chain=False))
        assert report.has_errors

    def test_longer_relay_chain(self):
        """Four-hop chain through every rank."""
        def app(mpi):
            buf = mpi.alloc("buf", 2, datatype=DOUBLE)
            src = mpi.alloc("src", 2, datatype=DOUBLE)
            win = mpi.win_create(buf)
            mpi.barrier()
            last = mpi.size - 1
            if mpi.rank == 0:
                win.lock(last, LOCK_SHARED)
                win.put(src, target=last)
                win.unlock(last)
                mpi.send("t", dest=1, tag=0)
            elif mpi.rank < last:
                mpi.recv(source=mpi.rank - 1, tag=0)
                mpi.send("t", dest=mpi.rank + 1, tag=0)
            else:
                mpi.recv(source=mpi.rank - 1, tag=0)
                buf[0] = 1.0
            mpi.barrier()
            win.free()

        report = check_app(app, nranks=5)
        assert not report.findings


class TestAliasingFalseNegative:
    """Section V: "pointer aliasing is a source for potential false
    negatives" when a buffer is reached through a copy the static analysis
    cannot see."""

    def test_window_buffer_still_tracked_dynamically(self):
        """Aliasing the WINDOW buffer is immune: window buffers are
        instrumented at Win_create regardless of the static report."""
        def app(mpi):
            grid = mpi.alloc("grid", 2, datatype=DOUBLE)
            src = mpi.alloc("src", 1, datatype=DOUBLE)
            win = mpi.win_create(grid)
            laundered = {"ref": grid}  # hidden from the AST analysis
            mpi.barrier()
            if mpi.rank == 0:
                win.lock(1, LOCK_SHARED)
                win.put(src, target=1, origin_count=1)
                win.unlock(1)
            else:
                laundered["ref"][0] = 5.0  # store via the hidden alias
            mpi.barrier()
            win.free()

        report = check_app(app, nranks=2)
        assert report.has_errors  # dynamic refinement catches it

    def test_origin_buffer_alias_through_container_missed(self):
        """An ORIGIN buffer reached only through a container stays
        uninstrumented under scope='report' — the documented false
        negative — and scope='all' recovers it."""
        def app(mpi):
            grid = mpi.alloc("grid", 2, datatype=DOUBLE)
            hidden = mpi.alloc("hidden", 1, datatype=DOUBLE)
            win = mpi.win_create(grid)
            box = {"ref": hidden}
            win.fence()
            if mpi.rank == 0:
                win.put(hidden, target=1, origin_count=1)
                box["ref"][0] = 9.0  # alias store: races with the Put
            win.fence()
            win.free()

        # `hidden` IS seeded (direct Put arg) so the store is seen even
        # through the container: the *buffer*, not the name, is tracked
        report = check_app(app, nranks=2)
        assert report.has_errors

    def test_truly_invisible_scratch_copy(self):
        """A plain Python list copy of tracked data is invisible — the
        genuine, unavoidable false-negative class the paper describes."""
        def app(mpi):
            grid = mpi.alloc("grid", 2, datatype=DOUBLE)
            win = mpi.win_create(grid)
            mpi.barrier()
            shadow = [0.0, 0.0]  # plain memory: no tracking possible
            if mpi.rank == 1:
                shadow[0] = 1.0  # were this grid, it would race
            mpi.barrier()
            win.free()

        report = check_app(app, nranks=2)
        assert not report.findings  # silent, by design
