"""Access-model lifting tests: RMA op views and local accesses."""

import pytest

from repro.core.compat import ACC, GET, LOAD, PUT, STORE
from repro.core.epochs import EpochIndex
from repro.core.model import build_access_model
from repro.core.preprocess import preprocess
from repro.profiler.session import profile_run
from repro.simmpi import DOUBLE, INT, SUM


def model_for(app, nranks, **kw):
    kw.setdefault("delivery", "random")
    pre = preprocess(profile_run(app, nranks, **kw).traces)
    epochs = EpochIndex(pre)
    return pre, build_access_model(pre, epochs)


class TestRMAOpViews:
    def test_put_target_intervals_in_target_space(self):
        def app(mpi):
            buf = mpi.alloc("buf", 4, datatype=DOUBLE)
            src = mpi.alloc("src", 2, datatype=DOUBLE)
            win = mpi.win_create(buf)
            win.fence()
            if mpi.rank == 0:
                win.put(src, target=1, target_disp=1, origin_count=2)
            win.fence()
            win.free()

        pre, model = model_for(app, 2)
        op = model.ops[0]
        assert op.kind == PUT and op.target == 1
        target_base = pre.window(0).bases[1]
        bounds = op.target_intervals.bounds()
        assert bounds.start == target_base + 8
        assert bounds.stop == target_base + 24

    def test_origin_intervals_with_offset(self):
        def app(mpi):
            buf = mpi.alloc("buf", 4, datatype=DOUBLE)
            src = mpi.alloc("src", 8, datatype=DOUBLE)
            win = mpi.win_create(buf)
            win.fence()
            if mpi.rank == 0:
                win.put(src, target=1, origin_offset=2, origin_count=3)
            win.fence()
            win.free()

        pre, model = model_for(app, 2)
        op = model.ops[0]
        origin_base = next(e for e in pre.events[0]
                           if getattr(e, "fn", None) == "Put") \
            .args["origin_base"]
        assert op.origin_intervals.bounds().start == origin_base + 16
        assert op.origin_intervals.byte_count() == 24

    def test_derived_target_datatype_intervals(self):
        def app(mpi):
            buf = mpi.alloc("buf", 8, datatype=INT)
            src = mpi.alloc("src", 2, datatype=INT)
            win = mpi.win_create(buf, disp_unit=1)
            vec = mpi.type_vector(2, 1, 2, INT)  # 2 ints, 1 int gap
            win.fence()
            if mpi.rank == 0:
                win.put(src, target=1, origin_count=2,
                        target_count=1, target_dtype=vec)
            win.fence()
            win.free()

        pre, model = model_for(app, 2)
        op = model.ops[0]
        assert len(op.target_intervals) == 2  # the vector's two segments

    def test_acc_metadata(self):
        def app(mpi):
            buf = mpi.alloc("buf", 2, datatype=INT)
            src = mpi.alloc("src", 2, datatype=INT)
            win = mpi.win_create(buf)
            win.fence()
            if mpi.rank == 0:
                win.accumulate(src, target=1, op=SUM)
            win.fence()
            win.free()

        pre, model = model_for(app, 2)
        op = model.ops[0]
        assert op.kind == ACC
        assert op.acc_op == "SUM"
        assert op.acc_base == "INT"

    def test_span_extends_to_epoch_close(self):
        def app(mpi):
            buf = mpi.alloc("buf", 1, datatype=INT)
            win = mpi.win_create(buf)
            win.fence()
            if mpi.rank == 0:
                win.put(buf, target=1, origin_count=1)
            win.fence()
            win.free()

        pre, model = model_for(app, 2)
        op = model.ops[0]
        assert op.epoch is not None
        assert op.span.start_seq == op.seq
        assert op.span.end_seq == op.epoch.close_seq > op.seq


class TestLocalAccesses:
    def test_mem_events_lifted(self):
        def app(mpi):
            buf = mpi.alloc("buf", 2, datatype=DOUBLE)
            win = mpi.win_create(buf)
            win.fence()
            buf[0] = 1.0
            x = buf[1]
            win.fence()
            win.free()

        pre, model = model_for(app, 2)
        mems = [la for la in model.local if la.fn == "mem"]
        assert {la.access for la in mems} == {LOAD, STORE}
        assert all(la.intervals.byte_count() == 8 for la in mems)

    def test_put_origin_is_load_get_origin_is_store(self):
        def app(mpi):
            buf = mpi.alloc("buf", 2, datatype=INT)
            src = mpi.alloc("src", 2, datatype=INT)
            dst = mpi.alloc("dst", 2, datatype=INT)
            win = mpi.win_create(buf)
            win.fence()
            if mpi.rank == 0:
                win.put(src, target=1)
                win.get(dst, target=1)
            win.fence()
            win.free()

        pre, model = model_for(app, 2)
        origins = {la.fn: la for la in model.local
                   if la.origin_of is not None}
        assert origins["Put"].access == LOAD
        assert origins["Get"].access == STORE
        assert origins["Put"].span.end_seq == \
            origins["Put"].origin_of.epoch.close_seq

    def test_send_is_load_recv_is_store(self):
        def app(mpi):
            buf = mpi.alloc("buf", 2, datatype=INT)
            if mpi.rank == 0:
                mpi.send(buf, dest=1)
            else:
                mpi.recv(buf, source=0)

        pre, model = model_for(app, 2)
        by_fn = {la.fn: la for la in model.local}
        assert by_fn["Send"].access == LOAD
        assert by_fn["Recv"].access == STORE
        assert by_fn["Recv"].intervals.byte_count() == 8

    def test_bcast_root_loads_others_store(self):
        def app(mpi):
            buf = mpi.alloc("buf", 2, datatype=INT)
            mpi.bcast(buf, root=1)

        pre, model = model_for(app, 3)
        accesses = {la.rank: la.access for la in model.local
                    if la.fn == "Bcast"}
        assert accesses == {0: STORE, 1: LOAD, 2: STORE}

    def test_object_payload_calls_skipped(self):
        def app(mpi):
            if mpi.rank == 0:
                mpi.send({"k": 1}, dest=1)
            else:
                mpi.recv(source=0)

        pre, model = model_for(app, 2)
        assert model.local == []
