"""Control-plane differential properties (hypothesis).

Randomized synchronization programs — fence / PSCW / lock / lock_all /
barrier / p2p mixes over random rank counts — pin the columnar control
plane to its reference implementations:

* the vectorized matcher against the per-event object walk (all match
  kinds, PSCW included) and against ``match_synchronization_naive``
  (the quadratic strawman; collective + p2p, the kinds it produces);
* :class:`~repro.core.calltable.CallTable` ingest against
  ``from_events`` over the decoded object stream — for binary (v2)
  traces this crosses frame boundaries, for text traces it pins the
  memoized fast parser to ``decode_event``;
* the shared-memory ship (``share_table``/``attach_table``) and pickle
  round-trips of a table;
* the vectorized :class:`~repro.core.clocks.ConcurrencyOracle` against
  the dict-based reference, compared on ``happens_before`` queries (the
  unit *numbering* may legitimately differ between builds; the query
  answers may not).
"""

import json
import os
import pickle

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.calltable import (
    CONTROL_PLANE_ENV, CallTable, attach_table, share_table,
)
from repro.core.clocks import ConcurrencyOracle
from repro.core.matching import (
    KIND_COLLECTIVE, KIND_P2P, match_synchronization,
    match_synchronization_naive, match_synchronization_object,
)
from repro.core.preprocess import preprocess
from repro.profiler.session import profile_run
from repro.simmpi import DOUBLE, LOCK_EXCLUSIVE, LOCK_SHARED

STEP_KINDS = ("fence", "lock", "lockall", "pscw", "barrier", "p2p")
#: the subset whose matches the naive strawman also produces
NAIVE_KINDS = ("fence", "lock", "barrier", "p2p")


def sync_program(mpi, steps=(), seed=0):
    """One random synchronization program; every rank derives the same
    step parameters from the shared seed, so the trace is consistent."""
    import random

    buf = mpi.alloc("wbuf", 8, datatype=DOUBLE, fill=0.0)
    src = mpi.alloc("src", 2, datatype=DOUBLE)
    win = mpi.win_create(buf)
    world = mpi.comm_group()
    rng = random.Random(seed)
    right = (mpi.rank + 1) % mpi.size
    left = (mpi.rank - 1) % mpi.size
    for kind in steps:
        tgt = rng.randrange(mpi.size)  # identical on every rank
        if kind == "fence":
            win.fence()
            win.put(src, target=right, origin_count=1)
            win.fence()
        elif kind == "lock":
            lock_type = (LOCK_EXCLUSIVE if rng.random() < 0.5
                         else LOCK_SHARED)
            win.lock(tgt, lock_type)
            if tgt != mpi.rank:
                win.put(src, target=tgt, origin_count=1)
            win.unlock(tgt)
        elif kind == "lockall":
            win.lock_all()
            win.put(src, target=right, origin_count=1)
            win.flush(right)
            win.unlock_all()
        elif kind == "pscw":
            win.post(world.incl([left]))
            win.start(world.incl([right]))
            win.put(src, target=right, origin_count=1)
            win.complete()
            win.wait()
        elif kind == "p2p":
            s = rng.randrange(mpi.size)
            d = (s + 1) % mpi.size
            if mpi.rank == s:
                mpi.send("m", dest=d, tag=7)
            elif mpi.rank == d:
                mpi.recv(source=s, tag=7)
        else:
            mpi.barrier()
    mpi.barrier()
    win.free()


class plane:
    """Pin the control plane for a block, restoring the prior value."""

    def __init__(self, name):
        self.name = name

    def __enter__(self):
        self.prior = os.environ.get(CONTROL_PLANE_ENV)
        os.environ[CONTROL_PLANE_ENV] = self.name

    def __exit__(self, *exc):
        if self.prior is None:
            os.environ.pop(CONTROL_PLANE_ENV, None)
        else:
            os.environ[CONTROL_PLANE_ENV] = self.prior


def canonical_matches(matches):
    """Order-free canonical form of a full match list (all kinds)."""
    out = []
    for m in matches:
        out.append((m.kind, m.fn, tuple(sorted(m.members.items())),
                    m.src, m.dst, m.comm_id, m.win_id,
                    tuple(sorted(m.exits.items()))))
    return sorted(out)


def coll_p2p_canonical(matches):
    out = set()
    for m in matches:
        if m.kind == KIND_COLLECTIVE:
            out.add(("coll", m.fn, tuple(sorted(m.members.items()))))
        elif m.kind == KIND_P2P:
            out.add(("p2p", m.src, m.dst))
    return out


def trace_for(steps, seed, nranks, trace_format="text"):
    return profile_run(sync_program, nranks,
                       params=dict(steps=list(steps), seed=seed),
                       delivery="random", seed=seed % 97,
                       trace_format=trace_format).traces


steps_st = st.lists(st.sampled_from(STEP_KINDS), min_size=1, max_size=6)
naive_steps_st = st.lists(st.sampled_from(NAIVE_KINDS), min_size=1,
                          max_size=6)
nranks_st = st.integers(2, 4)
seed_st = st.integers(0, 10 ** 6)


@given(steps_st, nranks_st, seed_st)
@settings(max_examples=25, deadline=None)
def test_prop_vectorized_matcher_equals_object_walk(steps, nranks, seed):
    traces = trace_for(steps, seed, nranks)
    with plane("columnar"):
        pre = preprocess(traces)
        fast = match_synchronization(pre)
    with plane("object"):
        pre_obj = preprocess(traces)
        walk = match_synchronization_object(pre_obj)
    assert canonical_matches(fast) == canonical_matches(walk)


@given(naive_steps_st, nranks_st, seed_st)
@settings(max_examples=20, deadline=None)
def test_prop_vectorized_matcher_equals_naive(steps, nranks, seed):
    traces = trace_for(steps, seed, nranks)
    with plane("columnar"):
        pre = preprocess(traces)
        fast = match_synchronization(pre)
    with plane("object"):
        pre_obj = preprocess(traces)
        naive = match_synchronization_naive(pre_obj)
    assert coll_p2p_canonical(fast) == coll_p2p_canonical(naive)


def assert_tables_equal(a: CallTable, b: CallTable):
    assert a.rank == b.rank and a.n == b.n
    for col in ("seq", "fn", "cls", "comm", "win", "peer", "tag", "req",
                "req_kind", "target", "lock", "group_off", "group_val"):
        np.testing.assert_array_equal(getattr(a, col), getattr(b, col),
                                      err_msg=col)
    assert a.lock_types == b.lock_types
    for i in range(a.n):
        assert a.group(i) == b.group(i)
        assert a.lock_type(i) == b.lock_type(i)


@given(steps_st, nranks_st, seed_st,
       st.sampled_from(["text", "binary"]))
@settings(max_examples=15, deadline=None)
def test_prop_calltable_roundtrip(steps, nranks, seed, trace_format):
    """Ingest-built tables equal event-built tables — across v2 frame
    boundaries for binary traces — and survive shm + pickle trips."""
    traces = trace_for(steps, seed, nranks, trace_format=trace_format)
    for rank in range(nranks):
        with plane("columnar"), traces.reader(rank) as reader:
            calls, _counts = reader.read_calls()
            table = reader.call_table
        assert table is not None
        rebuilt = CallTable.from_events(rank, calls)
        assert_tables_equal(table, rebuilt)

        desc, shm = share_table(table, f"mcc-test-{os.getpid()}-{rank}")
        try:
            attached = attach_table(desc)
        finally:
            shm.close()
            shm.unlink()
        assert_tables_equal(table, attached)

        pickled = pickle.loads(pickle.dumps(table))
        assert_tables_equal(table, pickled)


@given(steps_st, nranks_st, seed_st)
@settings(max_examples=15, deadline=None)
def test_prop_fast_parse_equals_decode_event(steps, nranks, seed):
    """The memoized text-line fast parser yields CallEvents identical to
    the canonical ``decode_event`` (the object plane's reader)."""
    traces = trace_for(steps, seed, nranks)
    for rank in range(nranks):
        with plane("columnar"), traces.reader(rank) as reader:
            fast, _counts = reader.read_calls()
        with plane("object"), traces.reader(rank) as reader:
            ref, _counts = reader.read_calls()
        assert len(fast) == len(ref)
        for f, r in zip(fast, ref):
            assert (f.rank, f.seq, f.fn) == (r.rank, r.seq, r.fn)
            assert f.args == r.args
            assert f.loc == r.loc


@given(steps_st, nranks_st, seed_st)
@settings(max_examples=10, deadline=None)
def test_prop_oracle_queries_agree_across_planes(steps, nranks, seed):
    """Vectorized and reference oracle builds answer every
    ``happens_before`` query identically (same matches in, so any
    divergence is the clock construction's fault) — and the vectorized
    build's answers survive pickling."""
    traces = trace_for(steps, seed, nranks)
    with plane("columnar"):
        pre = preprocess(traces)
        matches = match_synchronization(pre)
        fast = ConcurrencyOracle(pre, matches)
    with plane("object"):
        ref = ConcurrencyOracle(pre, matches)
    shipped = pickle.loads(pickle.dumps(fast))

    seqs = {rank: sorted(fast.sync_seqs[rank]) for rank in range(nranks)}
    probes = []
    for rank in range(nranks):
        pts = seqs[rank]
        # sync points themselves, their neighbours, and the extremes
        sample = set()
        for s in pts[:8]:
            sample.update((s - 1, s, s + 1))
        sample.update((0, (pts[-1] + 2) if pts else 2))
        probes.append(sorted(sample))
    checked = 0
    for a_rank in range(nranks):
        for b_rank in range(nranks):
            if a_rank == b_rank:
                continue
            for a_seq in probes[a_rank]:
                for b_seq in probes[b_rank]:
                    want = ref.happens_before(a_rank, a_seq,
                                              b_rank, b_seq)
                    assert fast.happens_before(
                        a_rank, a_seq, b_rank, b_seq) == want
                    assert shipped.happens_before(
                        a_rank, a_seq, b_rank, b_seq) == want
                    checked += 1
                    if checked >= 600:
                        return


# ----------------------------------------------------------------------
# corpus differential: object vs columnar over every registered bug case
# x both memory models x both trace formats (the CI step)
# ----------------------------------------------------------------------

import pytest

from repro.apps.registry import BUG_CASES, EXTRA_CASES
from repro.core.checker import check_traces

ALL_CASES = list(BUG_CASES) + list(EXTRA_CASES)
RANKS_CAP = 8
MEMORY_MODELS = ("separate", "unified")
TRACE_FORMATS = ("text", "binary")

_TRACES = {}


def case_traces(case, trace_format):
    key = (case.name, trace_format)
    if key not in _TRACES:
        nranks = min(case.nranks, RANKS_CAP)
        _TRACES[key] = profile_run(case.app, nranks,
                                   params=case.params(True),
                                   trace_format=trace_format).traces
    return _TRACES[key]


def canonical_report(report) -> str:
    payload = report.to_dict()
    payload["stats"].pop("phase_seconds")
    return json.dumps(payload, sort_keys=True)


class TestControlPlaneCorpus:
    @pytest.mark.parametrize("trace_format", TRACE_FORMATS)
    @pytest.mark.parametrize("memory_model", MEMORY_MODELS)
    @pytest.mark.parametrize("case", ALL_CASES, ids=lambda c: c.name)
    def test_planes_byte_identical(self, case, memory_model,
                                   trace_format):
        traces = case_traces(case, trace_format)
        reports = {}
        for name in ("object", "columnar"):
            with plane(name):
                reports[name] = canonical_report(
                    check_traces(traces, memory_model=memory_model))
        assert reports["object"] == reports["columnar"]
