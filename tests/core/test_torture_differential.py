"""Randomized torture workloads: every analysis path must agree.

For each generated workload (random mix of fence/lock epochs, RMA op
kinds, local accesses, p2p and collectives over random byte ranges), four
independent implementations of "what conflicts?" are compared:

* the production batch pipeline (window-vector detector + VC oracle);
* the combinatorial strawman detector;
* the streaming region-at-a-time checker;
* the batch pipeline on a re-serialized copy of the traces (write/read
  round-trip stability).

Any divergence is a bug in one of them — this is the repository's deepest
integration invariant.
"""

import random

import pytest

from repro.core.checker import check_traces
from repro.core.streaming import check_streaming
from repro.profiler.session import profile_run
from repro.simmpi import DOUBLE, LOCK_EXCLUSIVE, LOCK_SHARED

WINDOW_WORDS = 12


def torture_app(mpi, seed, steps=14):
    """A random-but-deterministic workload; identical control flow on
    every rank (collectives stay matched), rank-dependent data ops."""
    rng = random.Random(seed)  # same stream on all ranks
    wbuf = mpi.alloc("wbuf", WINDOW_WORDS, datatype=DOUBLE)
    src = mpi.alloc("src", 4, datatype=DOUBLE)
    dst = mpi.alloc("dst", 4, datatype=DOUBLE)
    win = mpi.win_create(wbuf)
    win.fence()

    for _step in range(steps):
        action = rng.choice(["fence_ops", "lock_ops", "local", "barrier",
                             "p2p", "acc", "pscw", "ibarrier",
                             "allreduce", "ratomic"])
        actor = rng.randrange(mpi.size)
        target = rng.randrange(mpi.size)
        disp = rng.randrange(WINDOW_WORDS - 3)
        count = rng.randint(1, 3)
        if action == "fence_ops":
            # NB: every rank must consume the same random draws, or the
            # shared control-flow stream diverges
            use_put = rng.random() < 0.5
            if mpi.rank == actor:
                if use_put:
                    win.put(src, target=target, target_disp=disp,
                            origin_count=count)
                else:
                    win.get(dst, target=target, target_disp=disp,
                            origin_count=count)
            win.fence()
        elif action == "lock_ops":
            lock = rng.choice([LOCK_SHARED, LOCK_EXCLUSIVE])
            if mpi.rank == actor:
                win.lock(target, lock)
                win.put(src, target=target, target_disp=disp,
                        origin_count=count)
                win.unlock(target)
        elif action == "acc":
            op = rng.choice(["SUM", "MAX"])
            if mpi.rank == actor:
                win.lock(target, LOCK_SHARED)
                win.accumulate(src, target=target, op=op,
                               target_disp=disp, origin_count=count)
                win.unlock(target)
        elif action == "local":
            if mpi.rank == actor:
                wbuf[disp] = float(_step)
                _ = wbuf[(disp + 1) % WINDOW_WORDS]
        elif action == "barrier":
            mpi.barrier()
        elif action == "pscw":
            exposer = actor
            accessor = (actor + 1) % mpi.size
            world = mpi.world.world_comm.group
            if exposer != accessor:
                if mpi.rank == exposer:
                    win.post(world.incl([accessor]))
                    win.wait()
                elif mpi.rank == accessor:
                    win.start(world.incl([exposer]))
                    win.put(src, target=exposer, target_disp=disp,
                            origin_count=count)
                    win.complete()
        elif action == "ibarrier":
            req = mpi.ibarrier()
            if mpi.rank == actor:
                wbuf[disp] = float(_step)  # between init and wait
            mpi.wait(req)
        elif action == "allreduce":
            mpi.allreduce([float(mpi.rank)], op="SUM")
        elif action == "ratomic":
            if mpi.rank == actor and target != actor:
                win.lock(target, LOCK_SHARED)
                req = win.raccumulate(src, target=target, op="SUM",
                                      target_disp=disp,
                                      origin_count=count)
                req.wait()
                win.unlock(target)
        else:  # p2p
            peer = (actor + 1) % mpi.size
            if actor != peer:
                if mpi.rank == actor:
                    mpi.send("t", dest=peer, tag=_step)
                elif mpi.rank == peer:
                    mpi.recv(source=actor, tag=_step)

    win.fence()
    win.free()


def canonical(findings):
    return sorted(f.dedup_key + (f.occurrences,) for f in findings)


@pytest.mark.parametrize("seed", range(8))
def test_all_paths_agree(seed, tmp_path):
    run = profile_run(torture_app, nranks=4,
                      params=dict(seed=1000 + seed),
                      trace_dir=str(tmp_path / f"t{seed}"),
                      delivery="random", seed=seed)

    batch = check_traces(run.traces)
    naive = check_traces(run.traces, naive_inter=True)
    streamed, _checker = check_streaming(run.traces)
    reread = check_traces(run.traces)  # second read of the same files

    assert canonical(batch.findings) == canonical(naive.findings)
    assert canonical(batch.findings) == canonical(streamed)
    assert canonical(batch.findings) == canonical(reread.findings)


@pytest.mark.parametrize("seed", range(4))
def test_detection_schedule_invariant(seed):
    """The same program analyzed under different simulator schedules and
    delivery policies reports the same *structural* findings (source-pair
    level): detection reasons about the memory model, not one run."""
    keys = set()
    for sched_seed, delivery in [(0, "eager"), (1, "lazy"), (2, "random")]:
        run = profile_run(torture_app, nranks=3,
                          params=dict(seed=2000 + seed),
                          delivery=delivery, seed=sched_seed)
        report = check_traces(run.traces)
        keys.add(tuple(sorted(f.dedup_key for f in report.findings)))
    assert len(keys) == 1
