"""Parallel engine tests.

The contract of ``MCChecker(jobs=N)`` is *byte-identical reports at any
job count*: same deduplicated findings in the same order, same error and
warning counts, same pipeline statistics.  The differential below pins
that over the whole bundled bug corpus under both memory models, plus
unit tests for the shard helpers and the worker observability merge.
"""

import json

import pytest

from repro import obs
from repro.apps.registry import BUG_CASES, EXTRA_CASES
from repro.core.checker import check_traces
from repro.core.parallel import _chunk_bounds, resolve_jobs
from repro.profiler.session import profile_run

ALL_CASES = list(BUG_CASES) + list(EXTRA_CASES)
RANKS_CAP = 8
JOB_COUNTS = (1, 2, 4)
MEMORY_MODELS = ("separate", "unified")

_TRACES = {}


def traces_for(case):
    """Profile each buggy case once and reuse the traces across tests."""
    if case.name not in _TRACES:
        nranks = min(case.nranks, RANKS_CAP)
        _TRACES[case.name] = profile_run(
            case.app, nranks, params=case.params(True)).traces
    return _TRACES[case.name]


def canonical(report) -> str:
    """Byte-comparable form of a report, modulo wall-clock timings."""
    payload = report.to_dict()
    payload["stats"].pop("phase_seconds")
    return json.dumps(payload, sort_keys=True)


class TestDifferential:
    @pytest.mark.parametrize("case", ALL_CASES, ids=lambda c: c.name)
    def test_reports_identical_at_any_job_count(self, case):
        traces = traces_for(case)
        for memory_model in MEMORY_MODELS:
            reports = {
                jobs: check_traces(traces, memory_model=memory_model,
                                   jobs=jobs)
                for jobs in JOB_COUNTS
            }
            serial = reports[1]
            for jobs in JOB_COUNTS[1:]:
                parallel = reports[jobs]
                assert len(parallel.errors) == len(serial.errors), (
                    f"{case.name}/{memory_model}: jobs={jobs} error count")
                assert len(parallel.warnings) == len(serial.warnings), (
                    f"{case.name}/{memory_model}: jobs={jobs} warning count")
                assert canonical(parallel) == canonical(serial), (
                    f"{case.name}/{memory_model}: jobs={jobs} report "
                    "diverged from serial")

    def test_naive_inter_unaffected_by_jobs(self):
        # the combinatorial strawman stays serial under jobs>1, but the
        # report must still match the fully serial naive run
        traces = traces_for(ALL_CASES[0])
        serial = check_traces(traces, naive_inter=True)
        parallel = check_traces(traces, naive_inter=True, jobs=2)
        assert canonical(parallel) == canonical(serial)


class TestHelpers:
    def test_resolve_jobs(self):
        assert resolve_jobs(None) == 1
        assert resolve_jobs(0) == 1
        assert resolve_jobs(1) == 1
        assert resolve_jobs(4) == 4
        assert resolve_jobs(-1) >= 1

    def test_chunk_bounds_partition(self):
        for n in (1, 2, 5, 16, 97):
            for jobs in (1, 2, 4):
                chunks = _chunk_bounds(n, jobs)
                # contiguous, in order, covering exactly [0, n)
                assert chunks[0][0] == 0 and chunks[-1][1] == n
                for (_, hi), (lo, _) in zip(chunks, chunks[1:]):
                    assert hi == lo
                assert all(lo < hi for lo, hi in chunks)
                assert len(chunks) <= max(1, jobs * 4)


class TestWorkerObs:
    def test_worker_spans_and_counters_absorbed(self):
        traces = traces_for(ALL_CASES[0])
        rec = obs.configure(enabled=True)
        try:
            check_traces(traces, jobs=2)
            span_names = {r.name for r in rec.spans.records()}
            assert "analyzer.worker.scan" in span_names
            assert "analyzer.worker.lift" in span_names
            counter = rec.registry.get("parallel_tasks_total")
            assert counter is not None
            assert counter.value(phase="scan") == traces.nranks
            assert counter.value(phase="lift") == traces.nranks
        finally:
            obs.reset()

    def test_disabled_recorder_stays_empty(self):
        traces = traces_for(ALL_CASES[0])
        obs.reset()
        rec = obs.get_recorder()
        check_traces(traces, jobs=2)
        assert len(rec.spans) == 0
        assert len(rec.registry) == 0
