"""Parallel engine tests.

The contract of ``MCChecker(jobs=N)`` is *byte-identical reports at any
job count*: same deduplicated findings in the same order, same error and
warning counts, same pipeline statistics.  The differential below pins
that over the whole bundled bug corpus under both memory models, plus
unit tests for the shard helpers and the worker observability merge.
"""

import glob
import json

import pytest

from repro import obs
from repro.apps.registry import BUG_CASES, EXTRA_CASES
from repro.core.checker import check_traces
from repro.core.config import CheckConfig
from repro.core.parallel import (
    _chunk_bounds, acquire_pool, resolve_jobs, shutdown_pools,
)
from repro.profiler.session import profile_run


def _leaked_segments():
    return glob.glob("/dev/shm/mcc-*")

ALL_CASES = list(BUG_CASES) + list(EXTRA_CASES)
RANKS_CAP = 8
JOB_COUNTS = (1, 2, 4)
MEMORY_MODELS = ("separate", "unified")

_TRACES = {}


def traces_for(case):
    """Profile each buggy case once and reuse the traces across tests."""
    if case.name not in _TRACES:
        nranks = min(case.nranks, RANKS_CAP)
        _TRACES[case.name] = profile_run(
            case.app, nranks, params=case.params(True)).traces
    return _TRACES[case.name]


def canonical(report) -> str:
    """Byte-comparable form of a report, modulo wall-clock timings."""
    payload = report.to_dict()
    payload["stats"].pop("phase_seconds")
    return json.dumps(payload, sort_keys=True)


class TestDifferential:
    @pytest.mark.parametrize("case", ALL_CASES, ids=lambda c: c.name)
    def test_reports_identical_at_any_job_count(self, case):
        traces = traces_for(case)
        for memory_model in MEMORY_MODELS:
            reports = {
                jobs: check_traces(traces, memory_model=memory_model,
                                   jobs=jobs)
                for jobs in JOB_COUNTS
            }
            serial = reports[1]
            for jobs in JOB_COUNTS[1:]:
                parallel = reports[jobs]
                assert len(parallel.errors) == len(serial.errors), (
                    f"{case.name}/{memory_model}: jobs={jobs} error count")
                assert len(parallel.warnings) == len(serial.warnings), (
                    f"{case.name}/{memory_model}: jobs={jobs} warning count")
                assert canonical(parallel) == canonical(serial), (
                    f"{case.name}/{memory_model}: jobs={jobs} report "
                    "diverged from serial")

    def test_naive_inter_unaffected_by_jobs(self):
        # the combinatorial strawman stays serial under jobs>1, but the
        # report must still match the fully serial naive run
        traces = traces_for(ALL_CASES[0])
        serial = check_traces(traces, naive_inter=True)
        parallel = check_traces(traces, naive_inter=True, jobs=2)
        assert canonical(parallel) == canonical(serial)


class TestHelpers:
    def test_resolve_jobs(self):
        assert resolve_jobs(None) == 1
        assert resolve_jobs(0) == 1
        assert resolve_jobs(1) == 1
        assert resolve_jobs(4) == 4
        assert resolve_jobs(-1) >= 1

    def test_chunk_bounds_partition(self):
        for n in (1, 2, 5, 16, 97):
            for jobs in (1, 2, 4):
                chunks = _chunk_bounds(n, jobs)
                # contiguous, in order, covering exactly [0, n)
                assert chunks[0][0] == 0 and chunks[-1][1] == n
                for (_, hi), (lo, _) in zip(chunks, chunks[1:]):
                    assert hi == lo
                assert all(lo < hi for lo, hi in chunks)
                assert len(chunks) <= max(1, jobs * 4)


class TestWorkerObs:
    def test_worker_spans_and_counters_absorbed(self):
        traces = traces_for(ALL_CASES[0])
        rec = obs.configure(enabled=True)
        try:
            check_traces(traces, jobs=2)
            span_names = {r.name for r in rec.spans.records()}
            assert "analyzer.worker.scan" in span_names
            assert "analyzer.worker.lift" in span_names
            counter = rec.registry.get("parallel_tasks_total")
            assert counter is not None
            assert counter.value(phase="scan") == traces.nranks
            assert counter.value(phase="lift") == traces.nranks
        finally:
            obs.reset()

    def test_disabled_recorder_stays_empty(self):
        traces = traces_for(ALL_CASES[0])
        obs.reset()
        rec = obs.get_recorder()
        check_traces(traces, jobs=2)
        assert len(rec.spans) == 0
        assert len(rec.registry) == 0


class TestPoolLifecycle:
    """The persistent pool is created once, reused across phases and
    runs, and never leaves shared-memory segments behind."""

    def setup_method(self):
        shutdown_pools()

    def teardown_method(self):
        shutdown_pools()
        obs.reset()

    def test_pool_created_once_and_reused_across_runs(self):
        traces = traces_for(ALL_CASES[0])
        rec = obs.configure(enabled=True)
        # first parallel run: exactly one pool creation, zero reuses,
        # even though four phases (scan/lift/intra/inter) fan out
        check_traces(traces, config=CheckConfig(jobs=2))
        created = rec.registry.get("parallel_pool_created_total")
        assert created is not None and created.total == 1
        assert rec.registry.get("parallel_pool_reused_total") is None
        # second run in the same process: no new pool, one reuse
        check_traces(traces, config=CheckConfig(jobs=2))
        assert created.total == 1
        reused = rec.registry.get("parallel_pool_reused_total")
        assert reused is not None and reused.total == 1

    def test_incremental_runs_reuse_one_pool(self, tmp_path):
        traces = traces_for(ALL_CASES[0])
        cfg = CheckConfig(jobs=2, incremental=True,
                          cache_dir=str(tmp_path))
        rec = obs.configure(enabled=True)
        first = check_traces(traces, config=cfg)
        created = rec.registry.get("parallel_pool_created_total")
        assert created is not None and created.total == 1
        # a second incremental run (cache warm or not) must not fork a
        # second pool
        second = check_traces(traces, config=cfg)
        assert created.total == 1
        assert canonical(first) == canonical(second)

    def test_no_segments_leaked_after_normal_run(self):
        traces = traces_for(ALL_CASES[0])
        check_traces(traces, config=CheckConfig(jobs=2))
        assert _leaked_segments() == []

    def test_worker_crash_breaks_pool_and_cleans_segments(self):
        pool = acquire_pool(2)
        pool.begin_run()
        # register an expected segment the "task" never creates plus one
        # that exists, then kill a worker mid-task
        from repro.core.model import MemRows, share_rows
        import numpy as np
        rows = MemRows(0, None, np.arange(4, dtype=np.int64),
                       np.arange(4, dtype=np.int64),
                       np.ones(4, dtype=np.int64),
                       np.zeros(4, dtype=np.int32),
                       np.zeros(4, dtype=np.int32),
                       np.zeros(4, dtype=np.uint8))
        name = pool.new_segment_name(0)
        pool.expect_segment(name)
        desc, handle = share_rows(rows, name)
        pool.adopt_segment(name, handle)
        assert _leaked_segments() != []
        with pytest.raises(RuntimeError):
            pool.run("test", "crash", [0, 1])
        assert pool.broken
        pool.end_run()
        assert _leaked_segments() == []
        # the next acquire replaces the broken pool transparently
        fresh = acquire_pool(2)
        assert fresh is not pool and not fresh.broken
        fresh.begin_run()
        assert fresh.run("test", "echo", [7, 8]) == [7, 8]
        fresh.end_run()

    def test_run_report_carries_pool_and_byte_counters(self):
        from repro.obs.report import build_run_report
        traces = traces_for(ALL_CASES[0])
        rec = obs.configure(enabled=True)
        report = check_traces(traces, config=CheckConfig(jobs=2))
        entry = build_run_report(report, CheckConfig(jobs=2),
                                 recorder=rec)
        workers = entry.workers
        assert workers["pool"] == {"created": 1, "reused": 0}
        # the zero-copy claim: lift results carry descriptors only,
        # while the row columns land in the shm counter
        assert workers["shm_bytes"].get("model", 0) > 0
        assert "task" in workers["pickled_bytes"]["intra"]


class TestSpawnParity:
    """Forced-spawn pools must produce byte-identical reports: nothing
    may rely on fork-inherited state."""

    @pytest.mark.parametrize("case", ALL_CASES[:3], ids=lambda c: c.name)
    def test_forced_spawn_matches_serial(self, case, monkeypatch):
        traces = traces_for(case)
        serial = check_traces(traces, config=CheckConfig(jobs=1))
        shutdown_pools()
        monkeypatch.setenv("MCCHECKER_START_METHOD", "spawn")
        try:
            parallel = check_traces(traces, config=CheckConfig(jobs=2))
        finally:
            shutdown_pools()
        assert canonical(parallel) == canonical(serial)
        assert _leaked_segments() == []
