"""Sweep-engine differential tests.

The contract of ``MCChecker(engine="sweep")`` is *byte-identical reports
to the pairwise reference engine* over the whole bundled bug corpus,
under both memory models, in every execution mode (serial, parallel,
streaming).  The joins may only prune pairs the per-pair checkers would
reject anyway, so any divergence is a completeness bug in the sweep.

Alongside the corpus differential, the sweep-only fast paths are pinned
to their reference implementations directly: ``LiftCache``'s inline
data-map application vs :meth:`Datatype.intervals`, its bisect-backed
epoch lookup vs :meth:`EpochIndex.enclosing`, and the pair-batched
``ConcurrencyOracle.ordered_pairs`` vs the scalar :meth:`ordered`.
"""

import json

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.apps.registry import BUG_CASES, EXTRA_CASES
from repro.core.checker import check_traces
from repro.core.clocks import ConcurrencyOracle, Span
from repro.core.engine import resolve_engine
from repro.core.epochs import EpochIndex
from repro.core.matching import match_synchronization
from repro.core.model import LiftCache, build_access_model
from repro.core.preprocess import preprocess_calls
from repro.core.streaming import check_streaming
from repro.profiler.events import CallEvent
from repro.profiler.session import profile_run
from repro.simmpi.datatypes import Datatype
from repro.util.intervals import datamap_intervals

ALL_CASES = list(BUG_CASES) + list(EXTRA_CASES)
RANKS_CAP = 8
MEMORY_MODELS = ("separate", "unified")

_TRACES = {}


def traces_for(case):
    """Profile each buggy case once and reuse the traces across tests."""
    if case.name not in _TRACES:
        nranks = min(case.nranks, RANKS_CAP)
        _TRACES[case.name] = profile_run(
            case.app, nranks, params=case.params(True)).traces
    return _TRACES[case.name]


def canonical(report) -> str:
    """Byte-comparable form of a report, modulo wall-clock timings."""
    payload = report.to_dict()
    payload["stats"].pop("phase_seconds")
    return json.dumps(payload, sort_keys=True)


class TestEngineDifferential:
    @pytest.mark.parametrize("case", ALL_CASES, ids=lambda c: c.name)
    def test_sweep_matches_pairwise(self, case):
        traces = traces_for(case)
        for memory_model in MEMORY_MODELS:
            reports = {
                engine: check_traces(traces, memory_model=memory_model,
                                     engine=engine)
                for engine in ("sweep", "pairwise")
            }
            assert canonical(reports["sweep"]) == \
                canonical(reports["pairwise"]), (
                    f"{case.name}/{memory_model}: sweep report diverged")

    @pytest.mark.parametrize("case", ALL_CASES[:4], ids=lambda c: c.name)
    def test_parallel_sweep_matches_serial_pairwise(self, case):
        traces = traces_for(case)
        ref = canonical(check_traces(traces, engine="pairwise"))
        assert canonical(check_traces(traces, engine="sweep",
                                      jobs=2)) == ref, (
            f"{case.name}: jobs=2 sweep report diverged")

    @pytest.mark.parametrize("case", list(BUG_CASES)[:4],
                             ids=lambda c: c.name)
    def test_streaming_sweep_matches_streaming_pairwise(self, case):
        traces = traces_for(case)
        outs = {}
        for engine in ("sweep", "pairwise"):
            findings, checker = check_streaming(traces, engine=engine)
            outs[engine] = (
                json.dumps([f.to_dict() for f in findings],
                           sort_keys=True),
                checker.peak_buffered_mems)
        assert outs["sweep"][0] == outs["pairwise"][0], (
            f"{case.name}: streaming sweep findings diverged")
        assert outs["sweep"][1] == outs["pairwise"][1], (
            f"{case.name}: streaming sweep peak accounting diverged")


class TestEngineSelection:
    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError):
            resolve_engine("quadratic")

    def test_known_engines_resolve(self):
        assert resolve_engine("sweep") == "sweep"
        assert resolve_engine("pairwise") == "pairwise"


# ----------------------------------------------------------------------
# the sweep-only fast paths vs their reference implementations
# ----------------------------------------------------------------------

datamap_strategy = st.lists(
    st.tuples(st.integers(0, 48), st.integers(0, 12)), max_size=5)


@given(st.integers(0, 200), datamap_strategy, st.integers(0, 4),
       st.integers(1, 64))
def test_prop_liftcache_datamap_matches_reference(base, datamap, count,
                                                 extent):
    dt = Datatype(name="t", datamap=tuple(datamap), extent=extent,
                  base=None, type_id=1)
    fast = LiftCache._apply_datamap(dt, base, count)
    assert fast == datamap_intervals(base, tuple(datamap), count, extent)


def _pre_and_calls(case):
    traces = traces_for(case)
    pre = preprocess_calls(traces)
    return pre, {
        rank: [e for e in pre.events[rank] if isinstance(e, CallEvent)]
        for rank in range(pre.nranks)
    }


@pytest.mark.parametrize("case", ALL_CASES, ids=lambda c: c.name)
def test_liftcache_enclosing_matches_epoch_index(case):
    pre, calls = _pre_and_calls(case)
    epoch_index = EpochIndex(pre)
    checked = 0
    for rank, events in calls.items():
        cache = LiftCache(epoch_index, rank)
        for event in events:
            args = event.args
            if "win" not in args or "target" not in args:
                continue
            win_id = int(args["win"])
            target = int(args["target"])
            assert cache.enclosing(win_id, event.seq, target) is \
                epoch_index.enclosing(rank, win_id, event.seq, target)
            checked += 1
    assert checked > 0  # every bug case issues at least one RMA op


@pytest.mark.parametrize("case", ALL_CASES[:6], ids=lambda c: c.name)
def test_ordered_pairs_matches_scalar_ordered(case):
    traces = traces_for(case)
    pre = preprocess_calls(traces)
    oracle = ConcurrencyOracle(pre, match_synchronization(pre))
    model = build_access_model(pre, EpochIndex(pre))
    spans = [op.span for op in model.ops][:24]
    if len(spans) < 2:
        pytest.skip("case issues fewer than two RMA ops")
    pairs = [(a, b) for a in spans for b in spans]
    a_spans, b_spans = zip(*pairs)
    got = oracle.ordered_pairs(
        [s.rank for s in a_spans], [s.start_seq for s in a_spans],
        [s.end_seq for s in a_spans],
        [s.rank for s in b_spans], [s.start_seq for s in b_spans],
        [s.end_seq for s in b_spans])
    want = np.array([oracle.ordered(a, b) for a, b in pairs])
    assert (got == want).all()
