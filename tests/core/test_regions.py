"""Concurrent-region extraction tests."""

import pytest

from repro.core.clocks import Span
from repro.core.matching import match_synchronization
from repro.core.preprocess import preprocess
from repro.core.regions import RegionIndex
from repro.profiler.events import CallEvent
from repro.profiler.session import profile_run
from repro.simmpi import INT


def regions_for(app, nranks, **kw):
    kw.setdefault("delivery", "random")
    pre = preprocess(profile_run(app, nranks, **kw).traces)
    matches = match_synchronization(pre)
    return pre, RegionIndex(pre, matches)


class TestPartitioning:
    def test_n_barriers_make_n_plus_1_regions(self):
        def app(mpi):
            mpi.barrier()
            mpi.barrier()

        pre, regions = regions_for(app, 3)
        assert len(regions) == 3

    def test_no_global_sync_single_region(self):
        def app(mpi):
            if mpi.rank == 0:
                mpi.send("x", dest=1)
            elif mpi.rank == 1:
                mpi.recv(source=0)

        pre, regions = regions_for(app, 2)
        assert len(regions) == 1

    def test_subcomm_barrier_not_a_cut(self):
        def app(mpi):
            sub = mpi.comm_split(color=mpi.rank % 2, key=mpi.rank)
            mpi.barrier(comm=sub)

        pre, regions = regions_for(app, 4)
        # Comm_split is a world collective (1 cut); the sub barriers are not
        assert len(regions) == 2

    def test_fence_is_a_cut_on_world_window(self):
        def app(mpi):
            buf = mpi.alloc("buf", 1, datatype=INT)
            win = mpi.win_create(buf)
            win.fence()
            win.fence()
            win.free()

        pre, regions = regions_for(app, 2)
        # Win_create + 2 fences + Win_free = 4 cuts -> 5 regions
        assert len(regions) == 5


class TestMembership:
    def test_events_between_cuts(self):
        def app(mpi):
            mpi.comm_rank()   # region 0
            mpi.barrier()
            mpi.comm_rank()   # region 1

        pre, regions = regions_for(app, 2)
        barrier_seq = next(e.seq for e in pre.events[0]
                           if e.fn == "Barrier")
        assert regions.region_of_seq(0, barrier_seq - 1) == 0
        assert regions.region_of_seq(0, barrier_seq + 1) == 1
        assert regions.regions[0].contains_seq(0, barrier_seq - 1)
        assert not regions.regions[0].contains_seq(0, barrier_seq)

    def test_point_span_in_one_region(self):
        def app(mpi):
            mpi.barrier()
            mpi.comm_rank()

        pre, regions = regions_for(app, 2)
        barrier_seq = next(e.seq for e in pre.events[0]
                           if e.fn == "Barrier")
        span = Span.point(0, barrier_seq + 1)
        assert list(regions.regions_of_span(span)) == [1]

    def test_span_crossing_cut_in_both_regions(self):
        def app(mpi):
            mpi.comm_rank()
            mpi.barrier()
            mpi.comm_rank()

        pre, regions = regions_for(app, 2)
        barrier_seq = next(e.seq for e in pre.events[0]
                           if e.fn == "Barrier")
        span = Span(0, barrier_seq - 1, barrier_seq + 1)
        assert list(regions.regions_of_span(span)) == [0, 1]

    def test_span_ending_exactly_at_cut_stays_before(self):
        def app(mpi):
            mpi.comm_rank()
            mpi.barrier()

        pre, regions = regions_for(app, 2)
        barrier_seq = next(e.seq for e in pre.events[0]
                           if e.fn == "Barrier")
        # an epoch closing exactly at the cut does not extend past it
        span = Span(0, barrier_seq - 1, barrier_seq)
        assert list(regions.regions_of_span(span)) == [0]

    def test_open_ended_span_reaches_last_region(self):
        def app(mpi):
            mpi.barrier()
            mpi.barrier()

        pre, regions = regions_for(app, 2)
        span = Span(0, 0, 1 << 60)
        assert list(regions.regions_of_span(span)) == [0, 1, 2]


class TestSpanEdgeCases:
    """Boundary behavior the parallel engine's region sharding relies on."""

    def _barrier_app(self):
        def app(mpi):
            mpi.comm_rank()
            mpi.barrier()
            mpi.comm_rank()
        return app

    def test_span_starting_exactly_on_cut(self):
        pre, regions = regions_for(self._barrier_app(), 2)
        barrier_seq = next(e.seq for e in pre.events[0]
                           if e.fn == "Barrier")
        # a span opening exactly at the cut lands in both adjacent
        # regions — a sound superset: every region-0 access ends at or
        # before the cut, so the oracle orders all the extra pairs away
        span = Span(0, barrier_seq, barrier_seq + 1)
        assert list(regions.regions_of_span(span)) == [0, 1]

    def test_cut_to_cut_span(self):
        def app(mpi):
            mpi.barrier()
            mpi.comm_rank()
            mpi.barrier()

        pre, regions = regions_for(app, 2)
        first, second = [e.seq for e in pre.events[0]
                         if e.fn == "Barrier"]
        # opening at one cut and closing at the next covers exactly the
        # region between them (plus the sound extra region before)
        span = Span(0, first, second)
        assert list(regions.regions_of_span(span)) == [0, 1]

    def test_span_entirely_past_last_cut(self):
        pre, regions = regions_for(self._barrier_app(), 2)
        barrier_seq = next(e.seq for e in pre.events[0]
                           if e.fn == "Barrier")
        span = Span(0, barrier_seq + 3, barrier_seq + 9)
        assert list(regions.regions_of_span(span)) == [len(regions) - 1]

    def test_span_far_beyond_trace_clamps_to_last_region(self):
        pre, regions = regions_for(self._barrier_app(), 2)
        span = Span(0, 1 << 59, 1 << 60)
        assert list(regions.regions_of_span(span)) == [len(regions) - 1]

    def test_single_region_trace(self):
        def app(mpi):
            mpi.comm_rank()
            mpi.comm_rank()

        pre, regions = regions_for(app, 2)
        assert len(regions) == 1
        for span in (Span.point(0, 0), Span(0, 0, 5),
                     Span(1, 2, 1 << 60)):
            assert list(regions.regions_of_span(span)) == [0]
