"""Spec-differential property: MC-Checker's cross-process findings on a
randomly generated two-origin RMA pattern must match the verdict computed
directly from Table I plus interval overlap.

This closes the loop between the executable checker (trace collection,
matching, regions, window vectors, oracle) and the declarative
specification (the compatibility matrix): for every generated case the two
must agree on whether a memory consistency error exists.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import check_app
from repro.core.compat import accumulate_exception, compat_verdict
from repro.simmpi import DOUBLE, LOCK_SHARED
from repro.util.intervals import IntervalSet

WINDOW_WORDS = 8
WORD = 8  # bytes per element

op_strategy = st.sampled_from(["put", "get", "acc_sum", "acc_max"])
span_strategy = st.tuples(st.integers(0, WINDOW_WORDS - 1),
                          st.integers(1, 4)).filter(
    lambda t: t[0] + t[1] <= WINDOW_WORDS)


def _issue(win, op, buf, disp, count):
    if op == "put":
        win.put(buf, target=2, target_disp=disp, origin_count=count)
    elif op == "get":
        win.get(buf, target=2, target_disp=disp, origin_count=count)
    elif op == "acc_sum":
        win.accumulate(buf, target=2, op="SUM", target_disp=disp,
                       origin_count=count)
    else:
        win.accumulate(buf, target=2, op="MAX", target_disp=disp,
                       origin_count=count)


def _kind(op):
    return {"put": "put", "get": "get",
            "acc_sum": "acc", "acc_max": "acc"}[op]


def _acc_op(op):
    return {"acc_sum": "SUM", "acc_max": "MAX"}.get(op)


def two_origin_app(mpi, op_a, disp_a, count_a, op_b, disp_b, count_b):
    """Ranks 0 and 1 issue one op each at rank 2's window, concurrently."""
    wbuf = mpi.alloc("wbuf", WINDOW_WORDS, datatype=DOUBLE)
    src = mpi.alloc("src", 4, datatype=DOUBLE)
    win = mpi.win_create(wbuf)
    mpi.barrier()
    if mpi.rank == 0:
        win.lock(2, LOCK_SHARED)
        _issue(win, op_a, src, disp_a, count_a)
        win.unlock(2)
    elif mpi.rank == 1:
        win.lock(2, LOCK_SHARED)
        _issue(win, op_b, src, disp_b, count_b)
        win.unlock(2)
    mpi.barrier()
    win.free()


@given(op_strategy, span_strategy, op_strategy, span_strategy)
@settings(max_examples=30, deadline=None)
def test_prop_checker_matches_table1(op_a, span_a, op_b, span_b):
    disp_a, count_a = span_a
    disp_b, count_b = span_b

    # the declarative verdict, computed straight from the spec
    iv_a = IntervalSet.single(disp_a * WORD, count_a * WORD)
    iv_b = IntervalSet.single(disp_b * WORD, count_b * WORD)
    expected = compat_verdict(
        _kind(op_a), _kind(op_b), iv_a.overlaps(iv_b),
        acc_same=accumulate_exception(_acc_op(op_a), "DOUBLE",
                                      _acc_op(op_b), "DOUBLE"))

    # the executable verdict, through the entire pipeline
    report = check_app(
        two_origin_app, nranks=3,
        params=dict(op_a=op_a, disp_a=disp_a, count_a=count_a,
                    op_b=op_b, disp_b=disp_b, count_b=count_b))
    cross = [f for f in report.findings if f.kind == "cross_process"]

    if expected is None:
        assert not cross, (
            f"spec allows {op_a}@{span_a} vs {op_b}@{span_b} but checker "
            f"flagged: {[f.format() for f in cross]}")
    else:
        assert cross, (
            f"spec forbids {op_a}@{span_a} vs {op_b}@{span_b} "
            f"({expected}) but checker stayed quiet")
        assert any(f.rule == expected for f in cross)


@given(op_strategy, span_strategy, op_strategy, span_strategy)
@settings(max_examples=15, deadline=None)
def test_prop_barrier_removes_all_findings(op_a, span_a, op_b, span_b):
    """Metamorphic: the same two operations separated by a barrier are
    ordered, so NO configuration may be flagged."""
    def ordered_app(mpi):
        wbuf = mpi.alloc("wbuf", WINDOW_WORDS, datatype=DOUBLE)
        src = mpi.alloc("src", 4, datatype=DOUBLE)
        win = mpi.win_create(wbuf)
        mpi.barrier()
        if mpi.rank == 0:
            win.lock(2, LOCK_SHARED)
            _issue(win, op_a, src, span_a[0], span_a[1])
            win.unlock(2)
        mpi.barrier()  # the separating synchronization
        if mpi.rank == 1:
            win.lock(2, LOCK_SHARED)
            _issue(win, op_b, src, span_b[0], span_b[1])
            win.unlock(2)
        mpi.barrier()
        win.free()

    report = check_app(ordered_app, nranks=3)
    assert not report.findings
