"""Diagnostic-report formatting and deduplication tests."""

from repro.core.diagnostics import (
    CROSS_PROCESS, INTRA_EPOCH, SEVERITY_ERROR, SEVERITY_WARNING,
    AccessDesc, ConsistencyError, dedupe,
)
from repro.util.intervals import IntervalSet
from repro.util.location import SourceLocation


def make_error(line_a=10, line_b=20, severity=SEVERITY_ERROR,
               kind=INTRA_EPOCH, rule="NONOV", overlap_bytes=8):
    a = AccessDesc(rank=0, kind="put", fn="Put", var="buf",
                   loc=SourceLocation("app.py", line_a, "main"),
                   intervals=IntervalSet.single(0, 16))
    b = AccessDesc(rank=1, kind="store", fn="mem", var="buf",
                   loc=SourceLocation("app.py", line_b, "main"),
                   intervals=IntervalSet.single(8, 16))
    return ConsistencyError(
        kind=kind, severity=severity, rule=rule, win_id=0, a=a, b=b,
        overlap=IntervalSet.single(8, overlap_bytes))


class TestFormatting:
    def test_error_header(self):
        text = make_error().format()
        assert text.startswith("ERROR: memory consistency conflict "
                               "within an epoch")

    def test_warning_header(self):
        text = make_error(severity=SEVERITY_WARNING,
                          kind=CROSS_PROCESS).format()
        assert text.startswith("WARNING")
        assert "across processes" in text

    def test_both_sides_described(self):
        text = make_error().format()
        assert "MPI_Put of 'buf' by rank 0 at app.py:10" in text
        assert "local store of 'buf' by rank 1 at app.py:20" in text

    def test_overlap_bytes_shown(self):
        assert "(8 bytes)" in make_error().format()

    def test_no_overlap_message(self):
        error = make_error()
        error.overlap = IntervalSet()
        assert "no byte overlap" in error.format()

    def test_occurrence_count_shown(self):
        error = make_error()
        error.occurrences = 3
        assert "seen 3 times" in error.format()


class TestSuggestions:
    def test_intra_origin_local_suggests_moving_access(self):
        error = make_error(kind=INTRA_EPOCH, rule="ORIGIN")
        error.b.fn = "mem"
        text = error.suggestion()
        assert "epoch-closing" in text or "Win_flush" in text

    def test_intra_op_pair_suggests_epoch_split(self):
        error = make_error(kind=INTRA_EPOCH, rule="NONOV")
        error.b = AccessDesc(rank=1, kind="get", fn="Get", var="x",
                             loc=SourceLocation("a.py", 3, "f"),
                             intervals=IntervalSet.single(0, 8))
        assert "separate epochs" in error.suggestion()

    def test_exclusive_warning_mentions_order(self):
        error = make_error(kind=CROSS_PROCESS, severity=SEVERITY_WARNING)
        assert "order" in error.suggestion()

    def test_cross_local_mentions_synchronize(self):
        error = make_error(kind=CROSS_PROCESS)
        error.b.fn = "mem"
        assert "synchronize" in error.suggestion()

    def test_cross_acc_pair_mentions_same_op(self):
        a = AccessDesc(rank=0, kind="acc", fn="Accumulate", var="x",
                       loc=SourceLocation("a.py", 1, "f"),
                       intervals=IntervalSet.single(0, 8))
        b = AccessDesc(rank=1, kind="acc", fn="Accumulate", var="y",
                       loc=SourceLocation("a.py", 2, "f"),
                       intervals=IntervalSet.single(0, 8))
        error = ConsistencyError(kind=CROSS_PROCESS, severity=SEVERITY_ERROR,
                                 rule="NONOV", win_id=0, a=a, b=b,
                                 overlap=IntervalSet.single(0, 8))
        assert "same reduction op" in error.suggestion()

    def test_format_includes_suggestion(self):
        assert "suggested fix:" in make_error().format()


class TestDedup:
    def test_identical_findings_collapse(self):
        errors = [make_error(), make_error(), make_error()]
        out = dedupe(errors)
        assert len(out) == 1
        assert out[0].occurrences == 3

    def test_side_order_irrelevant(self):
        e1 = make_error()
        e2 = make_error()
        e2.a, e2.b = e2.b, e2.a
        assert len(dedupe([e1, e2])) == 1

    def test_different_locations_kept(self):
        out = dedupe([make_error(line_a=10), make_error(line_a=11)])
        assert len(out) == 2

    def test_different_severity_kept(self):
        out = dedupe([make_error(), make_error(severity=SEVERITY_WARNING)])
        assert len(out) == 2
