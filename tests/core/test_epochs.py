"""Epoch identification tests."""

import pytest

from repro.core.epochs import (
    EpochIndex, KIND_FENCE, KIND_LOCK, KIND_PSCW_ACCESS,
    KIND_PSCW_EXPOSURE, OPEN_ENDED,
)
from repro.core.preprocess import preprocess
from repro.profiler.events import CallEvent
from repro.profiler.session import profile_run
from repro.simmpi import INT, LOCK_EXCLUSIVE, LOCK_SHARED


def epochs_for(app, nranks, **kw):
    kw.setdefault("delivery", "random")
    pre = preprocess(profile_run(app, nranks, **kw).traces)
    return pre, EpochIndex(pre)


def seqs_of(pre, rank, fn):
    return [e.seq for e in pre.events[rank]
            if isinstance(e, CallEvent) and e.fn == fn]


class TestFenceEpochs:
    def test_between_consecutive_fences(self):
        def app(mpi):
            buf = mpi.alloc("buf", 1, datatype=INT)
            win = mpi.win_create(buf)
            win.fence()
            win.fence()
            win.fence()
            win.free()

        pre, index = epochs_for(app, 2)
        fences = [e for e in index.of_rank_win(0, 0)
                  if e.kind == KIND_FENCE]
        fence_seqs = seqs_of(pre, 0, "Win_fence")
        spans = sorted((e.open_seq, e.close_seq) for e in fences)
        # fence0->fence1, fence1->fence2, fence2->Win_free
        assert spans[0] == (fence_seqs[0], fence_seqs[1])
        assert spans[1] == (fence_seqs[1], fence_seqs[2])
        assert spans[2][0] == fence_seqs[2]

    def test_unclosed_fence_epoch_open_ended(self):
        def app(mpi):
            buf = mpi.alloc("buf", 1, datatype=INT)
            win = mpi.win_create(buf)
            win.fence()
            # program ends without another fence or free

        pre, index = epochs_for(app, 2)
        epoch = index.of_rank_win(0, 0)[0]
        assert epoch.close_seq == OPEN_ENDED
        assert epoch.contains_seq(10 ** 9)


class TestLockEpochs:
    def test_lock_unlock_pairing(self):
        def app(mpi):
            buf = mpi.alloc("buf", 1, datatype=INT)
            win = mpi.win_create(buf)
            mpi.barrier()
            if mpi.rank == 0:
                win.lock(1, LOCK_EXCLUSIVE)
                win.unlock(1)
                win.lock(1, LOCK_SHARED)
                win.unlock(1)
            mpi.barrier()
            win.free()

        pre, index = epochs_for(app, 2)
        locks = [e for e in index.of_rank_win(0, 0) if e.kind == KIND_LOCK]
        assert [e.lock_type for e in locks] == ["exclusive", "shared"]
        assert all(e.target == 1 for e in locks)
        assert locks[0].close_seq < locks[1].open_seq

    def test_concurrent_locks_to_different_targets(self):
        def app(mpi):
            buf = mpi.alloc("buf", 1, datatype=INT)
            win = mpi.win_create(buf)
            mpi.barrier()
            if mpi.rank == 0:
                win.lock(1, LOCK_SHARED)
                win.lock(2, LOCK_SHARED)
                win.unlock(2)
                win.unlock(1)
            mpi.barrier()
            win.free()

        pre, index = epochs_for(app, 3)
        locks = {e.target: e for e in index.of_rank_win(0, 0)
                 if e.kind == KIND_LOCK}
        assert set(locks) == {1, 2}
        # nested: epoch to target 2 is inside the epoch to target 1
        assert locks[1].open_seq < locks[2].open_seq
        assert locks[2].close_seq < locks[1].close_seq


class TestPSCWEpochs:
    def test_access_and_exposure(self):
        def app(mpi):
            buf = mpi.alloc("buf", 1, datatype=INT)
            win = mpi.win_create(buf)
            world = mpi.comm_group()
            if mpi.rank == 0:
                win.post(world.incl([1]))
                win.wait()
            else:
                win.start(world.incl([0]))
                win.complete()
            mpi.barrier()
            win.free()

        pre, index = epochs_for(app, 2)
        exposure = [e for e in index.of_rank_win(0, 0)
                    if e.kind == KIND_PSCW_EXPOSURE]
        access = [e for e in index.of_rank_win(1, 0)
                  if e.kind == KIND_PSCW_ACCESS]
        assert len(exposure) == 1 and exposure[0].group == (1,)
        assert len(access) == 1 and access[0].group == (0,)
        assert not exposure[0].is_access
        assert access[0].is_access


class TestEnclosing:
    def test_put_assigned_to_lock_epoch(self):
        def app(mpi):
            buf = mpi.alloc("buf", 1, datatype=INT)
            win = mpi.win_create(buf)
            win.fence()  # an active fence epoch exists too
            mpi.barrier()
            if mpi.rank == 0:
                win.lock(1, LOCK_SHARED)
                win.put(buf, target=1, origin_count=1)
                win.unlock(1)
            mpi.barrier()
            win.fence()
            win.free()

        pre, index = epochs_for(app, 2)
        put_seq = seqs_of(pre, 0, "Put")[0]
        epoch = index.enclosing(0, 0, put_seq, target=1)
        # the lock epoch is more specific than the enclosing fence epoch
        assert epoch.kind == KIND_LOCK

    def test_put_assigned_to_fence_epoch(self):
        def app(mpi):
            buf = mpi.alloc("buf", 1, datatype=INT)
            win = mpi.win_create(buf)
            win.fence()
            if mpi.rank == 0:
                win.put(buf, target=1, origin_count=1)
            win.fence()
            win.free()

        pre, index = epochs_for(app, 2)
        put_seq = seqs_of(pre, 0, "Put")[0]
        epoch = index.enclosing(0, 0, put_seq, target=1)
        assert epoch.kind == KIND_FENCE
        assert epoch.contains_seq(put_seq)

    def test_lock_epoch_does_not_cover_other_targets(self):
        def app(mpi):
            buf = mpi.alloc("buf", 1, datatype=INT)
            win = mpi.win_create(buf)
            mpi.barrier()
            if mpi.rank == 0:
                win.lock(1, LOCK_SHARED)
                win.unlock(1)
            mpi.barrier()
            win.free()

        pre, index = epochs_for(app, 3)
        lock = [e for e in index.of_rank_win(0, 0)
                if e.kind == KIND_LOCK][0]
        assert lock.covers_target(1)
        assert not lock.covers_target(2)

    def test_describe_smoke(self):
        def app(mpi):
            buf = mpi.alloc("buf", 1, datatype=INT)
            win = mpi.win_create(buf)
            win.fence()
            win.free()

        pre, index = epochs_for(app, 2)
        assert "fence epoch" in index.epochs[0].describe()
