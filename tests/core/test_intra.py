"""Within-epoch conflict detection tests (Figure 2a class)."""

import pytest

from repro.core.diagnostics import INTRA_EPOCH
from repro.core.epochs import EpochIndex
from repro.core.intra import detect_intra_epoch
from repro.core.model import build_access_model
from repro.core.preprocess import preprocess
from repro.profiler.session import profile_run
from repro.simmpi import DOUBLE, INT, LOCK_SHARED, SUM


def findings_for(app, nranks, **kw):
    kw.setdefault("delivery", "random")
    pre = preprocess(profile_run(app, nranks, **kw).traces)
    epochs = EpochIndex(pre)
    model = build_access_model(pre, epochs)
    return detect_intra_epoch(model, epochs)


def _win_app(body):
    """Wrap a two-rank fence-epoch body: body(mpi, win, bufs...)."""
    def app(mpi):
        buf = mpi.alloc("buf", 4, datatype=DOUBLE)
        aux = mpi.alloc("aux", 4, datatype=DOUBLE)
        win = mpi.win_create(buf)
        win.fence()
        if mpi.rank == 0:
            body(mpi, win, buf, aux)
        win.fence()
        win.free()
    return app


class TestOriginVsLocal:
    def test_store_after_put_flagged(self):
        def body(mpi, win, buf, aux):
            win.put(buf, target=1)
            buf[0] = 9.0

        findings = findings_for(_win_app(body), 2)
        assert len(findings) == 1
        f = findings[0]
        assert f.kind == INTRA_EPOCH and f.rule == "ORIGIN"
        assert {f.a.kind, f.b.kind} == {"put", "store"}

    def test_store_before_put_ok(self):
        def body(mpi, win, buf, aux):
            buf[0] = 9.0
            win.put(buf, target=1)

        assert findings_for(_win_app(body), 2) == []

    def test_load_after_put_ok(self):
        def body(mpi, win, buf, aux):
            win.put(buf, target=1)
            _ = buf[0]

        assert findings_for(_win_app(body), 2) == []

    def test_load_after_get_flagged(self):
        def body(mpi, win, buf, aux):
            win.get(aux, target=1)
            _ = aux[0]

        findings = findings_for(_win_app(body), 2)
        assert len(findings) == 1
        assert {findings[0].a.kind, findings[0].b.kind} == {"get", "load"}

    def test_store_after_get_flagged(self):
        def body(mpi, win, buf, aux):
            win.get(aux, target=1)
            aux[1] = 2.0

        assert len(findings_for(_win_app(body), 2)) == 1

    def test_disjoint_bytes_ok(self):
        def body(mpi, win, buf, aux):
            win.put(buf, target=1, origin_offset=0, origin_count=2)
            buf[2] = 5.0  # outside the Put's origin bytes

        assert findings_for(_win_app(body), 2) == []

    def test_access_in_next_epoch_ok(self):
        def app(mpi):
            buf = mpi.alloc("buf", 4, datatype=DOUBLE)
            win = mpi.win_create(buf)
            win.fence()
            if mpi.rank == 0:
                win.put(buf, target=1)
            win.fence()
            buf[0] = 9.0  # epoch already closed
            win.fence()
            win.free()

        assert findings_for(app, 2) == []


class TestOpPairs:
    def test_two_overlapping_puts_same_epoch_flagged(self):
        def body(mpi, win, buf, aux):
            win.put(buf, target=1, origin_count=2)
            win.put(aux, target=1, origin_count=2)

        findings = findings_for(_win_app(body), 2)
        assert any(f.rule == "NONOV" and
                   {f.a.kind, f.b.kind} == {"put"} for f in findings)

    def test_disjoint_puts_same_epoch_ok(self):
        def body(mpi, win, buf, aux):
            win.put(buf, target=1, target_disp=0, origin_count=2)
            win.put(aux, target=1, target_disp=2, origin_count=2)

        assert findings_for(_win_app(body), 2) == []

    def test_same_op_accumulates_overlap_ok(self):
        def body(mpi, win, buf, aux):
            win.accumulate(buf, target=1, op=SUM, origin_count=2)
            win.accumulate(aux, target=1, op=SUM, origin_count=2)

        assert findings_for(_win_app(body), 2) == []

    def test_different_op_accumulates_overlap_flagged(self):
        def body(mpi, win, buf, aux):
            win.accumulate(buf, target=1, op=SUM, origin_count=2)
            win.accumulate(aux, target=1, op="MAX", origin_count=2)

        findings = findings_for(_win_app(body), 2)
        assert any(f.rule == "NONOV" for f in findings)

    def test_put_get_overlap_same_epoch_flagged(self):
        def body(mpi, win, buf, aux):
            win.put(buf, target=1, origin_count=2)
            win.get(aux, target=1, origin_count=2)

        findings = findings_for(_win_app(body), 2)
        assert any({f.a.kind, f.b.kind} == {"put", "get"} for f in findings)

    def test_gets_into_same_origin_flagged(self):
        def body(mpi, win, buf, aux):
            win.get(aux, target=1, target_disp=0, origin_count=1)
            win.get(aux, target=1, target_disp=1, origin_count=1)

        findings = findings_for(_win_app(body), 2)
        # disjoint target bytes, but the same origin buffer is written twice
        assert any(f.rule == "ORIGIN" for f in findings)

    def test_put_then_get_same_origin_flagged(self):
        def body(mpi, win, buf, aux):
            win.put(aux, target=1, target_disp=0, origin_count=1)
            win.get(aux, target=1, target_disp=1, origin_count=1)

        findings = findings_for(_win_app(body), 2)
        assert any(f.rule == "ORIGIN" for f in findings)


class TestLockEpochVariant:
    def test_figure1_in_lock_epoch(self):
        def app(mpi):
            buf = mpi.alloc("buf", 2, datatype=INT)
            out = mpi.alloc("out", 1, datatype=INT)
            win = mpi.win_create(buf)
            mpi.barrier()
            if mpi.rank == 0:
                win.lock(1, LOCK_SHARED)
                win.get(out, target=1, origin_count=1)
                _ = out[0]
                win.unlock(1)
            mpi.barrier()
            win.free()

        findings = findings_for(app, 2)
        assert len(findings) == 1
        assert findings[0].rule == "ORIGIN"

    def test_diagnostics_carry_locations(self):
        def app(mpi):
            buf = mpi.alloc("buf", 2, datatype=INT)
            win = mpi.win_create(buf)
            win.fence()
            if mpi.rank == 0:
                win.put(buf, target=1)
                buf[0] = 3
            win.fence()
            win.free()

        findings = findings_for(app, 2)
        f = findings[0]
        assert f.a.loc.filename.endswith("test_intra.py")
        assert f.b.loc.lineno == f.a.loc.lineno + 1
        assert "MPI_Put" in f.format()
