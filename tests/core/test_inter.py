"""Cross-process detection tests (Figure 2b/2c/2d classes) + the naive
strawman differential."""

import pytest

from repro.core.checker import check_traces
from repro.core.clocks import ConcurrencyOracle
from repro.core.diagnostics import (
    CROSS_PROCESS, SEVERITY_ERROR, SEVERITY_WARNING,
)
from repro.core.epochs import EpochIndex
from repro.core.inter import detect_cross_process, detect_cross_process_naive
from repro.core.matching import match_synchronization
from repro.core.model import build_access_model
from repro.core.preprocess import preprocess
from repro.core.regions import RegionIndex
from repro.profiler.session import profile_run
from repro.simmpi import DOUBLE, INT, LOCK_EXCLUSIVE, LOCK_SHARED, SUM


def stages_for(app, nranks, **kw):
    kw.setdefault("delivery", "random")
    pre = preprocess(profile_run(app, nranks, **kw).traces)
    matches = match_synchronization(pre)
    oracle = ConcurrencyOracle(pre, matches)
    epochs = EpochIndex(pre)
    model = build_access_model(pre, epochs)
    regions = RegionIndex(pre, matches)
    return pre, model, regions, oracle, epochs


def findings_for(app, nranks, naive=False, **kw):
    pre, model, regions, oracle, epochs = stages_for(app, nranks, **kw)
    detect = detect_cross_process_naive if naive else detect_cross_process
    return detect(pre, model, regions, oracle, epochs)


class TestOpVsOp:
    def test_concurrent_overlapping_puts(self):
        def app(mpi):
            buf = mpi.alloc("buf", 4, datatype=DOUBLE)
            src = mpi.alloc("src", 2, datatype=DOUBLE)
            win = mpi.win_create(buf)
            win.fence()
            if mpi.rank in (0, 2):
                win.put(src, target=1)
            win.fence()
            win.free()

        findings = findings_for(app, 3)
        assert len(findings) == 1
        f = findings[0]
        assert f.kind == CROSS_PROCESS and f.severity == SEVERITY_ERROR
        assert {f.a.rank, f.b.rank} == {0, 2}

    def test_disjoint_puts_ok(self):
        def app(mpi):
            buf = mpi.alloc("buf", 4, datatype=DOUBLE)
            src = mpi.alloc("src", 1, datatype=DOUBLE)
            win = mpi.win_create(buf)
            win.fence()
            if mpi.rank != 1:
                win.put(src, target=1, target_disp=mpi.rank, origin_count=1)
            win.fence()
            win.free()

        assert findings_for(app, 4) == []

    def test_concurrent_same_op_accumulates_ok(self):
        def app(mpi):
            buf = mpi.alloc("buf", 2, datatype=DOUBLE)
            src = mpi.alloc("src", 2, datatype=DOUBLE)
            win = mpi.win_create(buf)
            win.fence()
            if mpi.rank != 0:
                win.accumulate(src, target=0, op=SUM)
            win.fence()
            win.free()

        assert findings_for(app, 4) == []

    def test_mixed_op_accumulates_flagged(self):
        def app(mpi):
            buf = mpi.alloc("buf", 2, datatype=DOUBLE)
            src = mpi.alloc("src", 2, datatype=DOUBLE)
            win = mpi.win_create(buf)
            win.fence()
            if mpi.rank == 1:
                win.accumulate(src, target=0, op=SUM)
            elif mpi.rank == 2:
                win.accumulate(src, target=0, op="MIN")
            win.fence()
            win.free()

        assert len(findings_for(app, 3)) == 1

    def test_put_get_different_targets_ok(self):
        def app(mpi):
            buf = mpi.alloc("buf", 2, datatype=DOUBLE)
            src = mpi.alloc("src", 2, datatype=DOUBLE)
            win = mpi.win_create(buf)
            win.fence()
            if mpi.rank == 0:
                win.put(src, target=2)
            elif mpi.rank == 1:
                win.get(src, target=3)
            win.fence()
            win.free()

        assert findings_for(app, 4) == []

    def test_sendrecv_ordering_prunes(self):
        def app(mpi):
            buf = mpi.alloc("buf", 2, datatype=DOUBLE)
            src = mpi.alloc("src", 2, datatype=DOUBLE)
            win = mpi.win_create(buf)
            mpi.barrier()
            if mpi.rank == 0:
                win.lock(2, LOCK_SHARED)
                win.put(src, target=2)
                win.unlock(2)
                mpi.send("go", dest=1)
            elif mpi.rank == 1:
                mpi.recv(source=0)
                win.lock(2, LOCK_SHARED)
                win.put(src, target=2)
                win.unlock(2)
            mpi.barrier()
            win.free()

        assert findings_for(app, 3) == []

    def test_without_sendrecv_flagged(self):
        def app(mpi):
            buf = mpi.alloc("buf", 2, datatype=DOUBLE)
            src = mpi.alloc("src", 2, datatype=DOUBLE)
            win = mpi.win_create(buf)
            mpi.barrier()
            if mpi.rank in (0, 1):
                win.lock(2, LOCK_SHARED)
                win.put(src, target=2)
                win.unlock(2)
            mpi.barrier()
            win.free()

        assert len(findings_for(app, 3)) == 1


class TestLocalVsOp:
    def test_target_store_vs_remote_put(self):
        def app(mpi):
            buf = mpi.alloc("buf", 2, datatype=DOUBLE)
            src = mpi.alloc("src", 1, datatype=DOUBLE)
            win = mpi.win_create(buf)
            mpi.barrier()
            if mpi.rank == 0:
                win.lock(1, LOCK_SHARED)
                win.put(src, target=1, target_disp=0, origin_count=1)
                win.unlock(1)
            else:
                buf[1] = 3.0  # no overlap with the Put's bytes, but ERROR
            mpi.barrier()
            win.free()

        findings = findings_for(app, 2)
        assert len(findings) == 1
        assert findings[0].rule == "ERROR"

    def test_target_load_vs_remote_put_needs_overlap(self):
        def app(mpi):
            buf = mpi.alloc("buf", 2, datatype=DOUBLE)
            src = mpi.alloc("src", 1, datatype=DOUBLE)
            win = mpi.win_create(buf)
            mpi.barrier()
            if mpi.rank == 0:
                win.lock(1, LOCK_SHARED)
                win.put(src, target=1, target_disp=0, origin_count=1)
                win.unlock(1)
            else:
                _ = buf[1]  # disjoint byte: allowed (NONOV, no overlap)
            mpi.barrier()
            win.free()

        assert findings_for(app, 2) == []

    def test_target_load_vs_overlapping_put(self):
        def app(mpi):
            buf = mpi.alloc("buf", 2, datatype=DOUBLE)
            src = mpi.alloc("src", 1, datatype=DOUBLE)
            win = mpi.win_create(buf)
            mpi.barrier()
            if mpi.rank == 0:
                win.lock(1, LOCK_SHARED)
                win.put(src, target=1, target_disp=1, origin_count=1)
                win.unlock(1)
            else:
                _ = buf[1]
            mpi.barrier()
            win.free()

        findings = findings_for(app, 2)
        assert len(findings) == 1
        assert findings[0].rule == "NONOV"

    def test_put_origin_read_vs_remote_put_into_same_window(self):
        """Rank 1's Put reads its own window memory as origin while rank 0
        Puts into that same memory — a get-like local access racing with a
        remote update (section IV-C-4's 'treat Put as local load')."""
        def app(mpi):
            buf = mpi.alloc("buf", 2, datatype=DOUBLE)
            src = mpi.alloc("src", 2, datatype=DOUBLE)
            win = mpi.win_create(buf)
            mpi.barrier()
            if mpi.rank == 0:
                win.lock(1, LOCK_SHARED)
                win.put(src, target=1)
                win.unlock(1)
            elif mpi.rank == 1:
                win.lock(2, LOCK_SHARED)
                win.put(buf, target=2)  # origin IS rank 1's window memory
                win.unlock(2)
            mpi.barrier()
            win.free()

        findings = findings_for(app, 3)
        assert any(f.a.fn == "Put" and f.b.fn == "Put" and
                   "load" in (f.a.kind, f.b.kind) for f in findings)

    def test_store_after_barrier_ok(self):
        def app(mpi):
            buf = mpi.alloc("buf", 2, datatype=DOUBLE)
            src = mpi.alloc("src", 1, datatype=DOUBLE)
            win = mpi.win_create(buf)
            mpi.barrier()
            if mpi.rank == 0:
                win.lock(1, LOCK_SHARED)
                win.put(src, target=1, origin_count=1)
                win.unlock(1)
            mpi.barrier()
            if mpi.rank == 1:
                buf[0] = 3.0  # separated by the barrier
            mpi.barrier()
            win.free()

        assert findings_for(app, 2) == []


class TestSeverity:
    def _lock_app(self, lock_type):
        def app(mpi):
            buf = mpi.alloc("buf", 2, datatype=DOUBLE)
            src = mpi.alloc("src", 2, datatype=DOUBLE)
            win = mpi.win_create(buf)
            mpi.barrier()
            if mpi.rank in (0, 1):
                win.lock(2, lock_type)
                win.put(src, target=2)
                win.unlock(2)
            mpi.barrier()
            win.free()
        return app

    def test_shared_locks_error(self):
        findings = findings_for(self._lock_app(LOCK_SHARED), 3)
        assert findings[0].severity == SEVERITY_ERROR

    def test_exclusive_locks_warning(self):
        findings = findings_for(self._lock_app(LOCK_EXCLUSIVE), 3)
        assert findings[0].severity == SEVERITY_WARNING

    def test_mixed_locks_error(self):
        def app(mpi):
            buf = mpi.alloc("buf", 2, datatype=DOUBLE)
            src = mpi.alloc("src", 2, datatype=DOUBLE)
            win = mpi.win_create(buf)
            mpi.barrier()
            if mpi.rank in (0, 1):
                lock = LOCK_EXCLUSIVE if mpi.rank == 0 else LOCK_SHARED
                win.lock(2, lock)
                win.put(src, target=2)
                win.unlock(2)
            mpi.barrier()
            win.free()

        findings = findings_for(app, 3)
        assert findings[0].severity == SEVERITY_ERROR


class TestNaiveEquivalence:
    """The linear window-vector detector and the combinatorial strawman
    must report the same conflicts (experiment E7's correctness leg)."""

    @pytest.mark.parametrize("case", ["puts", "local", "locks"])
    def test_same_findings(self, case):
        from repro.apps.jacobi import jacobi
        from repro.apps.lockopts import lockopts
        from repro.apps.pingpong import pingpong

        app, nranks, params = {
            "puts": (jacobi, 3, dict(buggy=True, interior=6, iterations=2)),
            "local": (lockopts, 4, dict(buggy=True)),
            "locks": (pingpong, 2, dict(buggy=True)),
        }[case]

        pre, model, regions, oracle, epochs = stages_for(
            app, nranks, params=params)
        fast = detect_cross_process(pre, model, regions, oracle, epochs)
        naive = detect_cross_process_naive(pre, model, regions, oracle,
                                           epochs)

        def canonical(findings):
            return sorted(f.dedup_key for f in findings)

        assert canonical(fast) == canonical(naive)


class TestLocalLockIndex:
    """The bisect-based ``_LocalLockIndex`` must answer exactly like a
    linear scan over every qualifying exclusive-lock epoch."""

    def _lock_heavy_app(self, mpi):
        buf = mpi.alloc("buf", 4, datatype=DOUBLE)
        win = mpi.win_create(buf)
        other = mpi.alloc("other", 2, datatype=DOUBLE)
        win2 = mpi.win_create(other)
        buf[0] = 1.0  # store outside any lock
        for i in range(3):
            win.lock(mpi.rank, lock_type=LOCK_EXCLUSIVE)
            buf[1] = float(i)  # store under a self-exclusive lock
            win.unlock(mpi.rank)
            buf[2] = float(i)  # store between lock epochs
        win.lock(mpi.rank, lock_type=LOCK_SHARED)
        buf[3] = 9.0  # shared lock does not qualify
        win.unlock(mpi.rank)
        target = (mpi.rank + 1) % mpi.size
        win.lock(target, lock_type=LOCK_EXCLUSIVE)
        buf[0] = 8.0  # remote-targeted lock does not qualify either
        win.unlock(target)
        win2.lock(mpi.rank, lock_type=LOCK_EXCLUSIVE)
        other[0] = 5.0  # covered, but only on win2
        win2.unlock(mpi.rank)
        mpi.barrier()
        win2.free()
        win.free()

    def test_bisect_index_matches_linear_scan(self):
        from repro.core.epochs import KIND_LOCK
        from repro.core.inter import LocalLockIndex

        pre, model, regions, oracle, epochs = stages_for(
            self._lock_heavy_app, 3)
        index = LocalLockIndex(epochs, pre.nranks)

        def linear_scan(la, win_id):
            return any(
                e.kind == KIND_LOCK and e.lock_type == LOCK_EXCLUSIVE
                and e.target == e.rank and e.rank == la.rank
                and e.win_id == win_id and e.contains_seq(la.seq)
                for e in epochs.epochs)

        win_ids = sorted({e.win_id for e in epochs.epochs})
        assert len(win_ids) == 2 and model.local
        answers = set()
        for la in model.local:
            for win_id in win_ids:
                got = index.covers(la, win_id)
                assert got == linear_scan(la, win_id), (
                    f"rank={la.rank} seq={la.seq} win={win_id}")
                answers.add(got)
        # the workload must exercise both covered and uncovered accesses
        assert answers == {True, False}
