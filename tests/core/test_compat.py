"""Exhaustive tests of the Table I compatibility matrix (experiment E1)."""

import pytest

from repro.core.compat import (
    ACC, BOTH, ERROR, GET, KINDS, LOAD, NONOV, PUT, STORE, TABLE,
    accumulate_exception, compat_verdict, table_entry,
)

#: The full expected matrix, row-major over (load, store, get, put, acc) —
#: the symmetric MPI-2.2 table the paper's Table I prints.
EXPECTED = {
    (LOAD, LOAD): BOTH, (LOAD, STORE): BOTH, (LOAD, GET): BOTH,
    (LOAD, PUT): NONOV, (LOAD, ACC): NONOV,
    (STORE, STORE): BOTH, (STORE, GET): NONOV, (STORE, PUT): ERROR,
    (STORE, ACC): ERROR,
    (GET, GET): BOTH, (GET, PUT): NONOV, (GET, ACC): NONOV,
    (PUT, PUT): NONOV, (PUT, ACC): NONOV,
    (ACC, ACC): BOTH,
}


class TestMatrix:
    def test_all_25_cells(self):
        for a in KINDS:
            for b in KINDS:
                expected = EXPECTED.get((a, b)) or EXPECTED.get((b, a))
                assert table_entry(a, b) == expected, (a, b)

    def test_symmetry(self):
        for a in KINDS:
            for b in KINDS:
                assert TABLE[(a, b)] == TABLE[(b, a)]

    def test_exactly_two_error_pairs(self):
        errors = {frozenset(k) for k, v in TABLE.items() if v == ERROR}
        assert errors == {frozenset({STORE, PUT}), frozenset({STORE, ACC})}

    def test_unknown_kind(self):
        with pytest.raises(KeyError):
            table_entry("load", "prefetch")


class TestVerdicts:
    def test_both_never_conflicts(self):
        assert compat_verdict(LOAD, LOAD, overlapping=True) is None
        assert compat_verdict(LOAD, GET, overlapping=True) is None

    def test_nonov_conflicts_only_on_overlap(self):
        assert compat_verdict(LOAD, PUT, overlapping=True) == NONOV
        assert compat_verdict(LOAD, PUT, overlapping=False) is None
        assert compat_verdict(PUT, PUT, overlapping=True) == NONOV

    def test_error_conflicts_regardless_of_overlap(self):
        assert compat_verdict(STORE, PUT, overlapping=False) == ERROR
        assert compat_verdict(STORE, ACC, overlapping=False) == ERROR
        assert compat_verdict(ACC, STORE, overlapping=True) == ERROR

    def test_acc_acc_same_op_type_permitted(self):
        assert compat_verdict(ACC, ACC, overlapping=True,
                              acc_same=True) is None

    def test_acc_acc_different_op_conflicts_on_overlap(self):
        assert compat_verdict(ACC, ACC, overlapping=True,
                              acc_same=False) == NONOV
        assert compat_verdict(ACC, ACC, overlapping=False,
                              acc_same=False) is None


class TestAccumulateException:
    def test_same_op_same_base(self):
        assert accumulate_exception("SUM", "INT", "SUM", "INT")

    def test_different_op(self):
        assert not accumulate_exception("SUM", "INT", "MAX", "INT")

    def test_different_base(self):
        assert not accumulate_exception("SUM", "INT", "SUM", "DOUBLE")

    def test_missing_info_not_exempt(self):
        assert not accumulate_exception(None, None, None, None)
        assert not accumulate_exception("SUM", None, "SUM", None)
