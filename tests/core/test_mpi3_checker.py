"""DN-Analyzer over MPI-3 extensions: flush consistency points, lock_all
epochs, atomics compatibility, and the unified memory model."""

import pytest

from repro.core import check_app
from repro.core.compat import (
    MODEL_SEPARATE, MODEL_UNIFIED, compat_verdict, table_entry,
)
from repro.simmpi import DOUBLE, INT, LOCK_SHARED


class TestUnifiedModelTable:
    def test_error_cells_soften_to_nonov(self):
        assert table_entry("store", "put", MODEL_UNIFIED) == "NONOV"
        assert table_entry("store", "acc", MODEL_UNIFIED) == "NONOV"

    def test_other_cells_unchanged(self):
        for pair in (("load", "put"), ("get", "put"), ("load", "load")):
            assert table_entry(*pair, MODEL_UNIFIED) == \
                table_entry(*pair, MODEL_SEPARATE)

    def test_unknown_model_rejected(self):
        with pytest.raises(KeyError):
            table_entry("load", "put", "psychic")

    def test_verdict_under_unified(self):
        assert compat_verdict("store", "put", overlapping=False,
                              model=MODEL_UNIFIED) is None
        assert compat_verdict("store", "put", overlapping=True,
                              model=MODEL_UNIFIED) == "NONOV"


def _store_vs_put_app(mpi):
    """Local store at the target, remote Put to *disjoint* window bytes."""
    buf = mpi.alloc("buf", 2, datatype=DOUBLE)
    src = mpi.alloc("src", 1, datatype=DOUBLE)
    win = mpi.win_create(buf)
    mpi.barrier()
    if mpi.rank == 0:
        win.lock(1, LOCK_SHARED)
        win.put(src, target=1, target_disp=0, origin_count=1)
        win.unlock(1)
    else:
        buf[1] = 3.0  # disjoint byte
    mpi.barrier()
    win.free()


class TestMemoryModelSwitch:
    def test_separate_model_flags_disjoint_store(self):
        report = check_app(_store_vs_put_app, nranks=2,
                           memory_model=MODEL_SEPARATE)
        assert report.has_errors

    def test_unified_model_permits_disjoint_store(self):
        report = check_app(_store_vs_put_app, nranks=2,
                           memory_model=MODEL_UNIFIED)
        assert not report.findings

    def test_unified_model_still_flags_overlap(self):
        def app(mpi):
            buf = mpi.alloc("buf", 2, datatype=DOUBLE)
            src = mpi.alloc("src", 1, datatype=DOUBLE)
            win = mpi.win_create(buf)
            mpi.barrier()
            if mpi.rank == 0:
                win.lock(1, LOCK_SHARED)
                win.put(src, target=1, target_disp=1, origin_count=1)
                win.unlock(1)
            else:
                buf[1] = 3.0  # same byte as the Put
            mpi.barrier()
            win.free()

        report = check_app(app, nranks=2, memory_model=MODEL_UNIFIED)
        assert report.has_errors


class TestFlushConsistency:
    def test_flush_ends_the_race_window(self):
        """A store to the origin buffer after Win_flush is safe — the
        paper's Figure 2a bug pattern, cured by an MPI-3 flush."""
        def app(mpi):
            buf = mpi.alloc("buf", 2, datatype=DOUBLE)
            src = mpi.alloc("src", 1, datatype=DOUBLE)
            win = mpi.win_create(buf)
            mpi.barrier()
            if mpi.rank == 0:
                win.lock(1, LOCK_SHARED)
                win.put(src, target=1, origin_count=1)
                win.flush(1)
                src[0] = 99.0  # AFTER the flush: ordered, no race
                win.unlock(1)
            mpi.barrier()
            win.free()

        report = check_app(app, nranks=2)
        assert not report.findings

    def test_without_flush_still_flagged(self):
        def app(mpi):
            buf = mpi.alloc("buf", 2, datatype=DOUBLE)
            src = mpi.alloc("src", 1, datatype=DOUBLE)
            win = mpi.win_create(buf)
            mpi.barrier()
            if mpi.rank == 0:
                win.lock(1, LOCK_SHARED)
                win.put(src, target=1, origin_count=1)
                src[0] = 99.0  # no flush: races with the pending Put
                win.unlock(1)
            mpi.barrier()
            win.free()

        report = check_app(app, nranks=2)
        assert report.has_errors

    def test_flush_orders_same_epoch_ops(self):
        """Two overlapping Puts in one lock epoch are a race — unless a
        flush sits between them."""
        def base(mpi, with_flush):
            buf = mpi.alloc("buf", 1, datatype=DOUBLE)
            src = mpi.alloc("src", 1, datatype=DOUBLE)
            win = mpi.win_create(buf)
            mpi.barrier()
            if mpi.rank == 0:
                win.lock(1, LOCK_SHARED)
                win.put(src, target=1, origin_count=1)
                if with_flush:
                    win.flush(1)
                win.put(src, target=1, origin_count=1)
                win.unlock(1)
            mpi.barrier()
            win.free()

        flagged = check_app(base, nranks=2, params=dict(with_flush=False))
        clean = check_app(base, nranks=2, params=dict(with_flush=True))
        assert flagged.has_errors
        assert not clean.findings


class TestAtomicsCompat:
    def test_concurrent_fetch_and_ops_compatible(self):
        def app(mpi):
            buf = mpi.alloc("buf", 1, datatype=INT, fill=0)
            one = mpi.alloc("one", 1, datatype=INT, fill=1)
            old = mpi.alloc("old", 1, datatype=INT)
            win = mpi.win_create(buf)
            mpi.barrier()
            if mpi.rank != 0:
                win.lock(0, LOCK_SHARED)
                win.fetch_and_op(one, old, target=0, op="SUM")
                win.unlock(0)
            mpi.barrier()
            win.free()

        report = check_app(app, nranks=4)
        assert not report.findings  # same op + same type: Table I's BOTH*

    def test_fetch_and_op_vs_put_flagged(self):
        def app(mpi):
            buf = mpi.alloc("buf", 1, datatype=INT, fill=0)
            one = mpi.alloc("one", 1, datatype=INT, fill=1)
            old = mpi.alloc("old", 1, datatype=INT)
            win = mpi.win_create(buf)
            mpi.barrier()
            if mpi.rank == 1:
                win.lock(0, LOCK_SHARED)
                win.fetch_and_op(one, old, target=0, op="SUM")
                win.unlock(0)
            elif mpi.rank == 2:
                win.lock(0, LOCK_SHARED)
                win.put(one, target=0, origin_count=1)
                win.unlock(0)
            mpi.barrier()
            win.free()

        report = check_app(app, nranks=3)
        assert report.has_errors
        fns = {f.a.fn for f in report.errors} | \
            {f.b.fn for f in report.errors}
        assert "Get_accumulate" in fns

    def test_mixed_op_atomics_flagged(self):
        def app(mpi):
            buf = mpi.alloc("buf", 1, datatype=INT, fill=0)
            one = mpi.alloc("one", 1, datatype=INT, fill=1)
            old = mpi.alloc("old", 1, datatype=INT)
            win = mpi.win_create(buf)
            mpi.barrier()
            if mpi.rank != 0:
                win.lock(0, LOCK_SHARED)
                op = "SUM" if mpi.rank == 1 else "MAX"
                win.fetch_and_op(one, old, target=0, op=op)
                win.unlock(0)
            mpi.barrier()
            win.free()

        report = check_app(app, nranks=3)
        assert report.has_errors

    def test_result_buffer_race_detected(self):
        """Reading the fetch result before the op completes races, exactly
        like reading a Get's destination (Figure 1 with MPI-3 calls)."""
        def app(mpi):
            buf = mpi.alloc("buf", 1, datatype=INT, fill=0)
            one = mpi.alloc("one", 1, datatype=INT, fill=1)
            old = mpi.alloc("old", 1, datatype=INT)
            win = mpi.win_create(buf)
            mpi.barrier()
            if mpi.rank == 1:
                win.lock(0, LOCK_SHARED)
                win.fetch_and_op(one, old, target=0, op="SUM")
                _ = old[0]  # before unlock/flush: undefined
                win.unlock(0)
            mpi.barrier()
            win.free()

        report = check_app(app, nranks=2)
        assert report.has_errors


class TestLockAllEpochs:
    def test_ops_in_lock_all_epoch_analyzed(self):
        def app(mpi):
            buf = mpi.alloc("buf", 1, datatype=INT, fill=0)
            src = mpi.alloc("src", 1, datatype=INT, fill=1)
            win = mpi.win_create(buf)
            mpi.barrier()
            if mpi.rank in (0, 1):
                win.lock_all()
                win.put(src, target=2, origin_count=1)
                win.unlock_all()
            mpi.barrier()
            win.free()

        report = check_app(app, nranks=3)
        assert report.has_errors  # two concurrent overlapping Puts

    def test_clean_lock_all_quiet(self):
        def app(mpi):
            buf = mpi.alloc("buf", 4, datatype=INT, fill=0)
            src = mpi.alloc("src", 1, datatype=INT, fill=1)
            win = mpi.win_create(buf)
            mpi.barrier()
            win.lock_all()
            for target in range(mpi.size):
                if target != mpi.rank:
                    win.put(src, target=target, target_disp=mpi.rank,
                            origin_count=1)
            win.unlock_all()
            mpi.barrier()
            win.free()

        report = check_app(app, nranks=4)
        assert not report.findings
