"""Finding-provenance differential tests.

Every finding must carry a non-empty provenance record — the detection
phase/pattern, the two influence spans as trace references, the
enclosing epoch (intra-epoch findings) and the failed happens-before
edge — and that record must be *path-invariant*: byte-identical across
engines, job counts, and incremental warm/cold runs, because it is
derived purely from the conflicting pair.  The run-dependent facts
(which engine/cache found it) live in the non-serialized ``context``
annotation instead, which this suite checks separately per path.
"""

import json

import pytest

from repro.apps.registry import BUG_CASES
from repro.core.checker import check_traces
from repro.core.config import CheckConfig
from repro.profiler.session import profile_run

RANKS_CAP = 8

_TRACES = {}


def traces_for(case):
    if case.name not in _TRACES:
        nranks = min(case.nranks, RANKS_CAP)
        _TRACES[case.name] = profile_run(
            case.app, nranks, params=case.params(True)).traces
    return _TRACES[case.name]


def cases_with_findings():
    out = []
    for case in BUG_CASES:
        report = check_traces(traces_for(case))
        if report.findings:
            out.append(case)
    return out


CASES = cases_with_findings()


def canonical(report) -> str:
    payload = report.to_dict()
    payload["stats"].pop("phase_seconds")
    return json.dumps(payload, sort_keys=True)


def _require_provenance(finding, label):
    prov = finding.provenance
    assert prov, f"{label}: finding has empty provenance"
    assert prov["phase"] in ("intra", "inter"), label
    assert prov["pattern"], label
    spans = prov["spans"]
    for side in ("a", "b"):
        rank, start, end = spans[side]
        assert rank >= 0 and start <= end, label
    assert prov["hb"]["edge"], label
    if prov["phase"] == "intra" and prov.get("epoch") is not None:
        epoch = prov["epoch"]
        assert {"rank", "win", "kind", "open_seq",
                "close_seq"} <= set(epoch), label


class TestProvenancePresence:
    def test_corpus_produces_findings(self):
        assert CASES, "no bug case produced findings"

    @pytest.mark.parametrize("case", CASES, ids=lambda c: c.name)
    def test_every_finding_has_provenance(self, case):
        report = check_traces(traces_for(case))
        for finding in report.findings:
            _require_provenance(finding, case.name)

    @pytest.mark.parametrize("case", CASES[:3], ids=lambda c: c.name)
    def test_provenance_rendered_in_text_report(self, case):
        report = check_traces(traces_for(case))
        text = report.format()
        assert "provenance:" in text
        first = report.findings[0]
        assert first.provenance_line() in text

    @pytest.mark.parametrize("case", CASES[:3], ids=lambda c: c.name)
    def test_provenance_serialized_in_to_dict(self, case):
        report = check_traces(traces_for(case))
        for entry in report.to_dict()["errors"] + \
                report.to_dict()["warnings"]:
            assert entry["provenance"], case.name


class TestProvenanceInvariance:
    """to_dict now includes provenance, so canonical-report equality
    across execution paths proves provenance invariance too."""

    @pytest.mark.parametrize("case", CASES, ids=lambda c: c.name)
    def test_identical_across_engines_and_jobs(self, case):
        traces = traces_for(case)
        ref = canonical(check_traces(traces, engine="pairwise"))
        assert canonical(check_traces(traces, engine="sweep")) == ref
        assert canonical(check_traces(traces, engine="sweep",
                                      jobs=2)) == ref

    @pytest.mark.parametrize("case", CASES[:3], ids=lambda c: c.name)
    def test_identical_across_incremental_warm_cold(self, case, tmp_path):
        traces = traces_for(case)
        config = CheckConfig(incremental=True,
                             cache_dir=str(tmp_path / "cache"))
        plain = canonical(check_traces(traces))
        cold = check_traces(traces, config)
        warm = check_traces(traces, config)
        assert canonical(cold) == plain
        assert canonical(warm) == plain


class TestRunContext:
    """The non-serialized context annotation tracks *how* each finding
    was produced — and never leaks into the serialized report."""

    @pytest.mark.parametrize("case", CASES[:3], ids=lambda c: c.name)
    def test_batch_context(self, case):
        report = check_traces(traces_for(case), engine="sweep")
        for finding in report.findings:
            ctx = finding.context
            assert ctx["engine"] == "sweep"
            assert ctx["mode"] == "batch"
            assert ctx["cache"] == "none"

    @pytest.mark.parametrize("case", CASES[:2], ids=lambda c: c.name)
    def test_incremental_context_cold_then_warm(self, case, tmp_path):
        traces = traces_for(case)
        config = CheckConfig(incremental=True,
                             cache_dir=str(tmp_path / "cache"))
        cold = check_traces(traces, config)
        for finding in cold.findings:
            assert finding.context["mode"] == "incremental"
            assert finding.context["cache"] == "computed"
            assert finding.context["shard"] >= 0
        warm = check_traces(traces, config)
        # the unchanged-manifest fast path serves the whole report
        for finding in warm.findings:
            assert finding.context["cache"] in ("hit", "manifest")

    @pytest.mark.parametrize("case", CASES[:1], ids=lambda c: c.name)
    def test_context_not_serialized(self, case):
        report = check_traces(traces_for(case))
        payload = json.dumps(report.to_dict())
        assert '"context"' not in payload
        first = report.findings[0]
        assert "context" not in first.to_dict()
        assert "context" not in first.to_payload()
