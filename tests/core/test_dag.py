"""Data-access DAG tests, including the paper's Figure 3/4 example."""

import networkx as nx
import pytest

from repro.core.dag import build_dag, concurrent, event_node, happens_before
from repro.core.epochs import EpochIndex
from repro.core.matching import match_synchronization
from repro.core.preprocess import preprocess
from repro.profiler.events import CallEvent
from repro.profiler.session import profile_run
from repro.simmpi import DOUBLE, INT


def dag_for(app, nranks, **kw):
    kw.setdefault("delivery", "random")
    pre = preprocess(profile_run(app, nranks, **kw).traces)
    matches = match_synchronization(pre)
    epochs = EpochIndex(pre)
    return pre, build_dag(pre, matches, epochs)


def seq_of(pre, rank, fn, occurrence=0):
    seqs = [e.seq for e in pre.events[rank]
            if isinstance(e, CallEvent) and e.fn == fn]
    return seqs[occurrence]


def mem_seq(pre, rank, access, occurrence=0):
    seqs = [e.seq for e in pre.events[rank]
            if not isinstance(e, CallEvent) and e.access == access]
    return seqs[occurrence]


class TestShape:
    def test_acyclic(self):
        def app(mpi):
            mpi.barrier()
            if mpi.rank == 0:
                mpi.send("x", dest=1)
            elif mpi.rank == 1:
                mpi.recv(source=0)
            mpi.barrier()

        pre, dag = dag_for(app, 3)
        assert nx.is_directed_acyclic_graph(dag)

    def test_every_event_is_a_vertex(self):
        def app(mpi):
            mpi.barrier()
            mpi.comm_rank()

        pre, dag = dag_for(app, 2)
        for rank in range(2):
            for event in pre.events[rank]:
                assert dag.has_node(event_node(rank, event.seq))

    def test_rma_hangs_between_epoch_boundaries(self):
        def app(mpi):
            buf = mpi.alloc("buf", 2, datatype=INT)
            win = mpi.win_create(buf)
            win.fence()
            if mpi.rank == 0:
                win.put(buf, target=1)
                _ = buf[0]
            win.fence()
            win.free()

        pre, dag = dag_for(app, 2)
        put = event_node(0, seq_of(pre, 0, "Put"))
        fence_open = event_node(0, seq_of(pre, 0, "Win_fence", 0))
        fence_close = event_node(0, seq_of(pre, 0, "Win_fence", 1))
        load = event_node(0, mem_seq(pre, 0, "load"))
        # ordered after the opening fence (via its sync node) and before
        # the closing fence call
        assert happens_before(dag, fence_open, put)
        assert dag.has_edge(put, fence_close)
        # the defining property: the Put is NOT ordered with the local load
        assert concurrent(dag, put, load)
        assert happens_before(dag, fence_open, load)


class TestFigure34:
    """The paper's running example: three ranks, two concurrent Puts into
    P1's window, local store at P1, barriers separating regions A/B."""

    @staticmethod
    def figure3(mpi):
        wbuf = mpi.alloc("wbuf", 8, datatype=DOUBLE)
        src = mpi.alloc("src", 2, datatype=DOUBLE)
        win = mpi.win_create(wbuf)
        win.fence()
        if mpi.rank == 0:
            win.put(src, target=1, target_disp=0, origin_count=2)  # op a
        if mpi.rank == 2:
            win.put(src, target=1, target_disp=1, origin_count=2)  # op c
        if mpi.rank == 1:
            wbuf[1] = -1.0                                         # op e
        win.fence()                                       # region boundary
        if mpi.rank == 2:
            win.put(src, target=0, target_disp=0, origin_count=2)
        win.fence()
        win.free()

    def test_concurrent_puts_unordered(self):
        pre, dag = dag_for(self.figure3, 3)
        op_a = event_node(0, seq_of(pre, 0, "Put"))
        op_c = event_node(2, seq_of(pre, 2, "Put", 0))
        assert concurrent(dag, op_a, op_c)

    def test_put_vs_local_store_unordered(self):
        pre, dag = dag_for(self.figure3, 3)
        op_a = event_node(0, seq_of(pre, 0, "Put"))
        op_e = event_node(1, mem_seq(pre, 1, "store"))
        assert concurrent(dag, op_a, op_e)

    def test_fence_separates_regions(self):
        pre, dag = dag_for(self.figure3, 3)
        op_a = event_node(0, seq_of(pre, 0, "Put"))       # region A
        op_d = event_node(2, seq_of(pre, 2, "Put", 1))    # region B
        assert happens_before(dag, op_a, op_d)
        assert not happens_before(dag, op_d, op_a)


class TestSendRecvEdges:
    def test_directed_edge_only(self):
        def app(mpi):
            if mpi.rank == 0:
                mpi.send("x", dest=1)
            else:
                mpi.recv(source=0)

        pre, dag = dag_for(app, 2)
        send = event_node(0, seq_of(pre, 0, "Send"))
        recv = event_node(1, seq_of(pre, 1, "Recv"))
        assert happens_before(dag, send, recv)
        assert not happens_before(dag, recv, send)


class TestRender:
    def test_ascii_render_topological(self):
        pre, dag = dag_for(lambda mpi: mpi.barrier(), 2)
        from repro.core.dag import render_ascii
        text = render_ascii(dag)
        assert "Barrier" in text
