"""MCChecker end-to-end pipeline tests."""

import pytest

from repro.core import check_app, check_traces
from repro.core.checker import MCChecker
from repro.profiler.session import profile_run
from repro.simmpi import DOUBLE, INT


def _buggy_app(mpi):
    buf = mpi.alloc("buf", 2, datatype=DOUBLE)
    win = mpi.win_create(buf)
    win.fence()
    if mpi.rank == 0:
        win.put(buf, target=1)
        buf[0] = 1.0
    win.fence()
    win.free()


def _clean_app(mpi):
    buf = mpi.alloc("buf", 2, datatype=DOUBLE)
    win = mpi.win_create(buf)
    win.fence()
    if mpi.rank == 0:
        win.put(buf, target=1)
    win.fence()
    buf[0] = 1.0
    win.fence()
    win.free()


class TestCheckApp:
    def test_buggy_detected(self):
        report = check_app(_buggy_app, nranks=2)
        assert report.has_errors
        assert len(report.errors) == 1

    def test_clean_passes(self):
        report = check_app(_clean_app, nranks=2)
        assert not report.has_errors
        assert not report.warnings

    def test_stats_populated(self):
        report = check_app(_buggy_app, nranks=2)
        stats = report.stats
        assert stats.nranks == 2
        assert stats.events > 0
        assert stats.rma_ops == 1
        assert stats.regions >= 2
        assert stats.epochs >= 2
        assert stats.sync_matches >= 3
        assert stats.total_seconds > 0
        assert set(stats.phase_seconds) == {
            "preprocess", "matching", "clocks", "epochs", "model",
            "regions", "intra", "inter"}

    def test_summary_and_format(self):
        report = check_app(_buggy_app, nranks=2)
        assert "1 error(s)" in report.summary()
        assert "MPI_Put" in report.format()


class TestCheckTraces:
    def test_offline_analysis(self, tmp_path):
        run = profile_run(_buggy_app, nranks=2, trace_dir=str(tmp_path))
        report = check_traces(run.traces)
        assert report.has_errors

    def test_naive_inter_agrees(self, tmp_path):
        run = profile_run(_buggy_app, nranks=2, trace_dir=str(tmp_path))
        fast = check_traces(run.traces)
        naive = check_traces(run.traces, naive_inter=True)
        assert sorted(f.dedup_key for f in fast.findings) == \
            sorted(f.dedup_key for f in naive.findings)


class TestDeduplication:
    def test_loop_reported_once_with_count(self):
        def app(mpi):
            buf = mpi.alloc("buf", 2, datatype=DOUBLE)
            win = mpi.win_create(buf)
            win.fence()
            for _ in range(5):
                if mpi.rank == 0:
                    win.put(buf, target=1)
                    buf[0] = 1.0
                win.fence()
            win.free()

        report = check_app(app, nranks=2)
        assert len(report.errors) == 1
        assert report.errors[0].occurrences == 5
        assert "seen 5 times" in report.errors[0].format()


class TestIntermediateAccess:
    def test_pipeline_objects_exposed(self, tmp_path):
        run = profile_run(_buggy_app, nranks=2, trace_dir=str(tmp_path))
        checker = MCChecker(run.traces)
        checker.run()
        assert checker.pre is not None
        assert checker.oracle is not None
        assert len(checker.regions) >= 2
        assert checker.model.ops


class TestRobustness:
    def test_truncated_trace_still_analyzable(self):
        """A rank that crashed mid-epoch leaves an open epoch; analysis
        must not blow up and should still flag the conflict."""
        def app(mpi):
            buf = mpi.alloc("buf", 2, datatype=DOUBLE)
            win = mpi.win_create(buf)
            win.fence()
            if mpi.rank == 0:
                win.put(buf, target=1)
                buf[0] = 1.0
            # never closes the epoch, never frees

        report = check_app(app, nranks=2, delivery="eager")
        assert report.has_errors

    def test_multiwindow_app(self):
        def app(mpi):
            a = mpi.alloc("a", 2, datatype=INT)
            b = mpi.alloc("b", 2, datatype=INT)
            win_a = mpi.win_create(a)
            win_b = mpi.win_create(b)
            win_a.fence()
            win_b.fence()
            if mpi.rank == 0:
                win_a.put(a, target=1)
                win_b.put(b, target=1)
                b[0] = 1  # conflicts only with win_b's Put
            win_a.fence()
            win_b.fence()
            win_a.free()
            win_b.free()

        report = check_app(app, nranks=2)
        assert len(report.errors) == 1
        assert report.errors[0].win_id == 1
