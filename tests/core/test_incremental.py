"""Incremental checking: cache soundness and byte-identical reports.

The contract of ``CheckConfig(incremental=True)`` is *byte-identical
reports at any cache temperature*: cold (empty cache), fully warm
(unchanged traces), and partially warm (some inputs changed) runs must
all produce exactly the report the batch pipeline produces, and warm
runs must reuse every shard whose inputs did not change.
"""

import json

import pytest

from repro import obs
from repro.apps.registry import BUG_CASES, EXTRA_CASES
from repro.core import incremental
from repro.core.checker import check_traces
from repro.core.config import CheckConfig
from repro.core.incremental import IncrementalChecker
from repro.profiler.session import profile_run
from repro.simmpi import DOUBLE

ALL_CASES = list(BUG_CASES) + list(EXTRA_CASES)
MEMORY_MODELS = ("separate", "unified")
RANKS_CAP = 4

_RUNS = {}
_BATCH = {}


def traces_for(case):
    run = _RUNS.get(case.name)
    if run is None:
        run = _RUNS[case.name] = profile_run(
            case.app, min(case.nranks, RANKS_CAP),
            params=case.params(True), trace_format="binary")
    return run.traces


def canonical(report) -> str:
    payload = report.to_dict()
    payload["stats"].pop("phase_seconds")
    return json.dumps(payload, sort_keys=True)


def batch_for(case, memory_model) -> str:
    key = (case.name, memory_model)
    if key not in _BATCH:
        _BATCH[key] = canonical(check_traces(
            traces_for(case), CheckConfig(memory_model=memory_model)))
    return _BATCH[key]


class TestWarmColdDifferential:
    @pytest.mark.parametrize("jobs", (1, 2))
    @pytest.mark.parametrize("memory_model", MEMORY_MODELS)
    @pytest.mark.parametrize("case", ALL_CASES, ids=lambda c: c.name)
    def test_cold_and_warm_match_batch(self, case, memory_model, jobs,
                                       tmp_path):
        traces = traces_for(case)
        config = CheckConfig(incremental=True,
                             cache_dir=str(tmp_path / "cache"),
                             memory_model=memory_model, jobs=jobs)
        cold = canonical(check_traces(traces, config))
        warm = canonical(check_traces(traces, config))
        assert cold == batch_for(case, memory_model)
        assert warm == cold

    def test_fully_warm_run_reuses_every_shard(self, tmp_path):
        case = ALL_CASES[0]
        config = CheckConfig(incremental=True,
                             cache_dir=str(tmp_path / "cache"))
        check_traces(traces_for(case), config)
        checker = IncrementalChecker(traces_for(case), config)
        checker.run()
        assert checker.dirty_shards == []

    def test_text_traces_cache_by_file_digest(self, tmp_path):
        case = ALL_CASES[0]
        run = profile_run(case.app, 2, params=case.params(True),
                          trace_dir=str(tmp_path / "traces"),
                          trace_format="text")
        config = CheckConfig(incremental=True,
                             cache_dir=str(tmp_path / "cache"))
        cold = canonical(check_traces(run.traces, config))
        checker = IncrementalChecker(run.traces, config)
        report = checker.run()
        assert canonical(report) == cold
        assert checker.dirty_shards == []


def _phased(mpi, extra=False):
    """Three fence/barrier-separated phases; ``extra`` adds a send/recv
    in the middle phase.  ``msg`` is allocated in both variants so later
    buffer addresses never shift between them."""
    wbuf = mpi.alloc("wbuf", 8, datatype=DOUBLE, fill=0.0)
    src = mpi.alloc("src", 2, datatype=DOUBLE, fill=1.0)
    msg = mpi.alloc("msg", 1, datatype=DOUBLE, fill=0.0)
    win = mpi.win_create(wbuf)
    win.fence()
    if mpi.rank == 0:
        win.put(src, target=1, target_disp=0, origin_count=2)
    win.fence()
    mpi.barrier()
    if extra:
        if mpi.rank == 0:
            mpi.send(msg, dest=1, tag=9)
        elif mpi.rank == 1:
            mpi.recv(msg, source=0, tag=9)
    mpi.barrier()
    if mpi.rank == 1:
        win.put(src, target=0, target_disp=4, origin_count=2)
    win.fence()
    mpi.barrier()
    win.free()


class TestInvalidation:
    def _traces(self, path, extra):
        return profile_run(_phased, 2, params=dict(extra=extra),
                           trace_dir=str(path),
                           trace_format="binary").traces

    def test_sync_change_dirties_downstream_not_upstream(self, tmp_path):
        """Adding a send/recv in the middle phase must re-run the
        regions its happens-before frontier can see — and only those:
        the phases before the change stay cache hits."""
        a = self._traces(tmp_path / "a", extra=False)
        b = self._traces(tmp_path / "b", extra=True)
        config = CheckConfig(incremental=True,
                             cache_dir=str(tmp_path / "cache"))
        check_traces(a, config)

        rec = obs.configure(enabled=True)
        try:
            warm_b = check_traces(b, config)
        finally:
            obs.reset()
        shards = rec.registry.get("incremental_cache_shards_total")
        hits = shards.value(outcome="hit")
        dirty = (shards.value(outcome="miss")
                 + shards.value(outcome="invalidated"))
        assert hits >= 1, "phases before the sync change must be reused"
        assert dirty >= 1, "the changed phase must be re-analyzed"
        regions = rec.registry.get("incremental_regions_total")
        assert regions.value(state="clean") >= 1
        assert regions.value(state="dirty") >= 1

        cold_b = check_traces(b, CheckConfig(
            incremental=True, cache_dir=str(tmp_path / "cache-fresh")))
        assert canonical(warm_b) == canonical(cold_b)

    def test_engine_version_bump_invalidates_everything(self, tmp_path,
                                                        monkeypatch):
        traces = self._traces(tmp_path / "t", extra=False)
        config = CheckConfig(incremental=True,
                             cache_dir=str(tmp_path / "cache"))
        cold = canonical(check_traces(traces, config))

        monkeypatch.setattr(incremental, "ENGINE_VERSION", "test-bump")
        rec = obs.configure(enabled=True)
        try:
            bumped = check_traces(traces, config)
        finally:
            obs.reset()
        shards = rec.registry.get("incremental_cache_shards_total")
        assert shards.value(outcome="hit") == 0
        assert shards.value(outcome="invalidated") >= 1
        assert canonical(bumped) == cold

    def test_corrupt_cache_entry_recomputes(self, tmp_path):
        traces = self._traces(tmp_path / "t", extra=False)
        config = CheckConfig(incremental=True,
                             cache_dir=str(tmp_path / "cache"))
        cold = canonical(check_traces(traces, config))

        # corrupt the manifest (disabling the whole-report fast path)
        # and two shard entries: a torn write and a key mismatch
        manifests = sorted(
            (tmp_path / "cache" / "manifests").rglob("*.json"))
        assert manifests
        for path in manifests:
            path.write_text("{not json", encoding="utf-8")
        shard_files = sorted((tmp_path / "cache" / "shards").rglob("*.json"))
        assert shard_files
        shard_files[0].write_text("{not json", encoding="utf-8")
        shard_files[-1].write_text(
            json.dumps({"key": "wrong", "intra": [], "inter": []}),
            encoding="utf-8")

        rec = obs.configure(enabled=True)
        try:
            warm = check_traces(traces, config)
        finally:
            obs.reset()
        shards = rec.registry.get("incremental_cache_shards_total")
        assert shards.value(outcome="corrupt") >= 1
        assert canonical(warm) == cold

        # the recompute healed the cache: next run is fully warm again
        checker = IncrementalChecker(traces, config)
        report = checker.run()
        assert checker.dirty_shards == []
        assert canonical(report) == cold

    def test_jobs_do_not_affect_cache_identity(self, tmp_path):
        """The manifest key deliberately excludes ``jobs``: a serial cold
        run must fully warm a parallel run and vice versa."""
        traces = self._traces(tmp_path / "t", extra=False)
        cache = str(tmp_path / "cache")
        serial = CheckConfig(incremental=True, cache_dir=cache, jobs=1)
        parallel = CheckConfig(incremental=True, cache_dir=cache, jobs=2)
        cold = canonical(check_traces(traces, serial))
        checker = IncrementalChecker(traces, parallel)
        report = checker.run()
        assert checker.dirty_shards == []
        assert canonical(report) == cold
