"""Streaming-checker tests: equivalence with batch, bounded buffering."""

import pytest

from repro.apps.emulate import emulate
from repro.apps.jacobi import jacobi
from repro.apps.lockopts import lockopts
from repro.apps.lu import lu
from repro.apps.pingpong import pingpong
from repro.core.checker import check_traces
from repro.core.streaming import StreamingChecker, check_streaming
from repro.profiler.session import profile_run

CASES = [
    ("emulate-buggy", emulate, 2, dict(buggy=True)),
    ("emulate-fixed", emulate, 2, dict(buggy=False)),
    ("jacobi-buggy", jacobi, 4, dict(buggy=True, interior=6, iterations=3)),
    ("jacobi-fixed", jacobi, 4, dict(buggy=False, interior=6, iterations=3)),
    ("lockopts-buggy", lockopts, 4, dict(buggy=True)),
    ("pingpong-buggy", pingpong, 2, dict(buggy=True)),
    ("lu-clean", lu, 4, dict(n=16)),
]


@pytest.fixture(scope="module")
def traces_for():
    cache = {}

    def build(name):
        if name not in cache:
            _n, app, nranks, params = next(
                (c for c in CASES if c[0] == name))
            cache[name] = profile_run(app, nranks, params=params,
                                      delivery="random").traces
        return cache[name]
    return build


class TestEquivalence:
    @pytest.mark.parametrize("name", [c[0] for c in CASES])
    def test_same_findings_as_batch(self, name, traces_for):
        traces = traces_for(name)
        batch = check_traces(traces)
        streamed, _checker = check_streaming(traces)
        assert sorted(f.dedup_key for f in streamed) == \
            sorted(f.dedup_key for f in batch.findings), name


class TestBoundedMemory:
    def test_peak_buffer_below_total_mems(self, traces_for):
        """The streaming checker must never hold all load/store events at
        once when the trace has several regions."""
        traces = traces_for("lu-clean")
        total_mems = traces.event_counts()["mem"]
        _findings, checker = check_streaming(traces)
        assert len(checker.regions) > 4
        assert 0 < checker.peak_buffered_mems < total_mems / 4

    def test_region_reports_ordered(self, traces_for):
        checker = StreamingChecker(traces_for("jacobi-buggy"))
        indices = [report.index for report in checker.run()]
        assert indices == sorted(indices)

    def test_findings_attributed_to_regions(self, traces_for):
        checker = StreamingChecker(traces_for("jacobi-buggy"))
        flagged = [r for r in checker.run() if r.findings]
        assert flagged  # the races surface in their own regions


class TestTruncatedTraces:
    def test_open_epoch_still_checked(self):
        def app(mpi):
            buf = mpi.alloc("buf", 2)
            win = mpi.win_create(buf)
            win.fence()
            if mpi.rank == 0:
                win.put(buf, target=1)
                buf[0] = 1.0  # race; epoch never closes

        traces = profile_run(app, 2, delivery="eager").traces
        findings, _checker = check_streaming(traces)
        assert any(f.severity == "error" for f in findings)
