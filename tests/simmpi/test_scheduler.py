"""Scheduler tests: determinism, blocking, deadlock detection, abort."""

import pytest

from repro.simmpi import run_app
from repro.simmpi.scheduler import Scheduler
from repro.util.errors import DeadlockError, SimMPIError


def _interleaving_app(mpi, log):
    for i in range(3):
        mpi.barrier()
        log.append((mpi.rank, i))
    return mpi.rank


class TestDeterminism:
    def test_round_robin_reproducible(self):
        logs = []
        for _ in range(2):
            log = []
            run_app(_interleaving_app, nranks=4, params={"log": log})
            logs.append(log)
        assert logs[0] == logs[1]

    def test_random_policy_reproducible_same_seed(self):
        logs = []
        for _ in range(2):
            log = []
            run_app(_interleaving_app, nranks=4, params={"log": log},
                    sched_policy="random", seed=99)
            logs.append(log)
        assert logs[0] == logs[1]

    def test_random_policy_seed_changes_interleaving(self):
        logs = []
        for seed in (1, 2, 3, 4, 5):
            log = []
            run_app(lambda mpi, log: log.append(mpi.rank) or mpi.barrier(),
                    nranks=6, params={"log": log},
                    sched_policy="random", seed=seed)
            logs.append(tuple(log))
        assert len(set(logs)) > 1  # at least two distinct interleavings


class TestValidation:
    def test_zero_ranks_rejected(self):
        with pytest.raises(ValueError):
            Scheduler(0)

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            Scheduler(2, policy="fifo")

    def test_body_count_mismatch(self):
        sched = Scheduler(2)
        with pytest.raises(ValueError):
            sched.start([lambda: None])


class TestNoFalseDeadlocks:
    """Regression: the detector must re-schedule EVERY blocked rank before
    declaring deadlock — under the random policy a rank can be skipped for
    many grants while its predicate is already satisfiable."""

    @pytest.mark.parametrize("seed", range(12))
    def test_barrier_storm_never_false_positives(self, seed):
        def app(mpi):
            for _ in range(5):
                mpi.barrier()
            if mpi.rank == 0:
                for peer in range(1, mpi.size):
                    mpi.recv(source=peer, tag=1)
            else:
                mpi.send("x", dest=0, tag=1)
            mpi.barrier()

        run_app(app, nranks=4, sched_policy="random", seed=seed)

    @pytest.mark.parametrize("seed", range(8))
    def test_lock_contention_never_false_positives(self, seed):
        from repro.simmpi import INT, LOCK_EXCLUSIVE

        def app(mpi):
            buf = mpi.alloc("buf", 1, datatype=INT)
            win = mpi.win_create(buf)
            mpi.barrier()
            win.lock(0, LOCK_EXCLUSIVE)
            win.unlock(0)
            mpi.barrier()
            win.free()

        run_app(app, nranks=5, sched_policy="random", seed=seed)


class TestDeadlock:
    def test_recv_cycle_detected(self):
        def cycle(mpi):
            mpi.recv(source=(mpi.rank + 1) % mpi.size, tag=0)

        with pytest.raises(DeadlockError) as excinfo:
            run_app(cycle, nranks=3)
        assert "Recv" in str(excinfo.value)
        assert set(excinfo.value.blocked) == {0, 1, 2}

    def test_partial_barrier_detected(self):
        def half_barrier(mpi):
            if mpi.rank != 0:
                mpi.barrier()

        with pytest.raises(DeadlockError):
            run_app(half_barrier, nranks=3)

    def test_self_recv_detected(self):
        def lonely(mpi):
            mpi.recv(source=mpi.rank, tag=0)

        with pytest.raises(DeadlockError):
            run_app(lonely, nranks=1)


class TestAbort:
    def test_app_exception_propagates(self):
        def boom(mpi):
            if mpi.rank == 1:
                raise RuntimeError("kaboom")
            mpi.barrier()

        with pytest.raises(RuntimeError, match="kaboom"):
            run_app(boom, nranks=3)

    def test_livelock_guard_trips(self):
        def spin(mpi):
            while True:
                mpi.world.scheduler.yield_point(mpi.rank)

        from repro.simmpi.runtime import World
        world = World(2, max_steps=10_000)
        with pytest.raises(SimMPIError, match="livelock"):
            world.run(spin)


class TestProgress:
    def test_all_ranks_complete(self):
        results = run_app(lambda mpi: mpi.rank * 2, nranks=5)
        assert results == [0, 2, 4, 6, 8]

    def test_switch_count_grows_with_calls(self):
        from repro.simmpi.runtime import World

        def chatty(mpi):
            for _ in range(10):
                mpi.barrier()

        w1 = World(2)
        w1.run(chatty)
        w2 = World(2)
        w2.run(lambda mpi: mpi.barrier())
        assert w1.scheduler.switches > w2.scheduler.switches
