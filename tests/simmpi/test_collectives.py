"""Collective operation semantics."""

import numpy as np
import pytest

from repro.simmpi import INT, run_app
from repro.util.errors import SimMPIError


class TestBarrier:
    def test_orders_phases(self):
        log = []

        def app(mpi, log):
            log.append(("pre", mpi.rank))
            mpi.barrier()
            log.append(("post", mpi.rank))

        run_app(app, nranks=3, params={"log": log}, sched_policy="random",
                seed=5)
        phases = [phase for phase, _ in log]
        assert phases[:3] == ["pre"] * 3 and phases[3:] == ["post"] * 3


class TestBcast:
    def test_object(self):
        def app(mpi):
            value = {"v": 42} if mpi.rank == 1 else None
            return mpi.bcast(value, root=1)

        assert run_app(app, nranks=3) == [{"v": 42}] * 3

    def test_buffer_in_place(self):
        def app(mpi):
            buf = mpi.alloc("buf", 4, datatype=INT,
                            fill=7 if mpi.rank == 0 else 0)
            mpi.bcast(buf, root=0)
            return buf.read().tolist()

        assert run_app(app, nranks=3) == [[7, 7, 7, 7]] * 3

    def test_partial_buffer(self):
        def app(mpi):
            buf = mpi.alloc("buf", 4, datatype=INT, fill=mpi.rank)
            mpi.bcast(buf, root=0, offset=1, count=2)
            return buf.read().tolist()

        results = run_app(app, nranks=2)
        assert results[1] == [1, 0, 0, 1]


class TestReductions:
    def test_reduce_sum_at_root(self):
        def app(mpi):
            out = mpi.reduce([mpi.rank + 1], op="SUM", root=2)
            return None if out is None else out.tolist()

        results = run_app(app, nranks=4)
        assert results == [None, None, [10], None]

    def test_allreduce_max(self):
        def app(mpi):
            return mpi.allreduce([float(mpi.rank), -float(mpi.rank)],
                                 op="MAX").tolist()

        assert run_app(app, nranks=3) == [[2.0, 0.0]] * 3

    def test_allreduce_prod(self):
        def app(mpi):
            return float(mpi.allreduce([mpi.rank + 1], op="PROD")[0])

        assert run_app(app, nranks=4) == [24.0] * 4

    def test_scan_inclusive(self):
        def app(mpi):
            return int(mpi.scan([1], op="SUM")[0])

        assert run_app(app, nranks=4) == [1, 2, 3, 4]

    def test_invalid_op_rejected(self):
        def app(mpi):
            mpi.allreduce([1], op="REPLACE")  # not a reduction op

        with pytest.raises(SimMPIError):
            run_app(app, nranks=2)


class TestGatherScatter:
    def test_gather(self):
        def app(mpi):
            return mpi.gather(mpi.rank * 10, root=0)

        results = run_app(app, nranks=3)
        assert results[0] == [0, 10, 20]
        assert results[1] is None

    def test_allgather(self):
        def app(mpi):
            return mpi.allgather(chr(ord("a") + mpi.rank))

        assert run_app(app, nranks=3) == [["a", "b", "c"]] * 3

    def test_scatter(self):
        def app(mpi):
            chunks = [[i, i] for i in range(mpi.size)] \
                if mpi.rank == 1 else None
            return mpi.scatter(chunks, root=1)

        assert run_app(app, nranks=3) == [[0, 0], [1, 1], [2, 2]]

    def test_alltoall(self):
        def app(mpi):
            return mpi.alltoall([f"{mpi.rank}->{d}"
                                 for d in range(mpi.size)])

        results = run_app(app, nranks=3)
        assert results[1] == ["0->1", "1->1", "2->1"]


class TestMismatchDetection:
    def test_different_collectives_same_slot(self):
        def app(mpi):
            if mpi.rank == 0:
                mpi.barrier()
            else:
                mpi.bcast("x", root=0)

        with pytest.raises(SimMPIError, match="collective mismatch"):
            run_app(app, nranks=2)


class TestSubCommunicators:
    def test_collective_on_split(self):
        def app(mpi):
            sub = mpi.comm_split(color=mpi.rank % 2, key=mpi.rank)
            total = mpi.allreduce([mpi.rank], op="SUM", comm=sub)
            return int(total[0])

        # evens {0,2} sum to 2, odds {1,3} sum to 4
        assert run_app(app, nranks=4) == [2, 4, 2, 4]

    def test_undefined_color_gets_none(self):
        def app(mpi):
            sub = mpi.comm_split(color=-1 if mpi.rank == 0 else 0)
            return sub is None

        assert run_app(app, nranks=3) == [True, False, False]

    def test_comm_split_rank_order_by_key(self):
        def app(mpi):
            sub = mpi.comm_split(color=0, key=-mpi.rank)
            return mpi.comm_rank(sub)

        # keys reverse the order
        assert run_app(app, nranks=3) == [2, 1, 0]

    def test_comm_dup_independent_matching(self):
        def app(mpi):
            dup = mpi.comm_dup()
            if mpi.rank == 0:
                mpi.send("on-dup", dest=1, comm=dup, tag=1)
                mpi.send("on-world", dest=1, tag=1)
                return None
            world_msg, _ = mpi.recv(source=0, tag=1)  # world comm only
            dup_msg, _ = mpi.recv(source=0, comm=dup, tag=1)
            return world_msg, dup_msg

        assert run_app(app, nranks=2)[1] == ("on-world", "on-dup")

    def test_comm_create_subset(self):
        def app(mpi):
            group = mpi.comm_group().incl([0, 2])
            sub = mpi.comm_create(group)
            if sub is None:
                return None
            return mpi.comm_size(sub)

        assert run_app(app, nranks=4) == [2, None, 2, None]


class TestExtendedCollectives:
    def test_exscan(self):
        def app(mpi):
            out = mpi.exscan([mpi.rank + 1], op="SUM")
            return None if out is None else int(out[0])

        # rank 0 undefined (None); rank i gets sum of 1..i
        assert run_app(app, nranks=4) == [None, 1, 3, 6]

    def test_exscan_prod(self):
        def app(mpi):
            out = mpi.exscan([2], op="PROD")
            return None if out is None else int(out[0])

        assert run_app(app, nranks=4) == [None, 2, 4, 8]

    def test_reduce_scatter(self):
        def app(mpi):
            send = [float(mpi.rank)] * 4  # 4 elements, counts (1,1,2)
            return mpi.reduce_scatter(send, counts=[1, 1, 2]).tolist()

        results = run_app(app, nranks=3)
        total = 0.0 + 1.0 + 2.0
        assert results == [[total], [total], [total, total]]

    def test_reduce_scatter_counts_mismatch(self):
        def app(mpi):
            mpi.reduce_scatter([1.0, 2.0], counts=[1])

        with pytest.raises(SimMPIError, match="counts"):
            run_app(app, nranks=2)

    def test_reduce_scatter_size_mismatch(self):
        def app(mpi):
            mpi.reduce_scatter([1.0, 2.0, 3.0], counts=[1, 1])

        with pytest.raises(SimMPIError, match="summing"):
            run_app(app, nranks=2)

    def test_gatherv_scatterv_objects(self):
        def app(mpi):
            chunk = list(range(mpi.rank + 1))  # ragged sizes
            gathered = mpi.gatherv(chunk, root=0)
            spread = mpi.scatterv(
                gathered if mpi.rank == 0 else None, root=0)
            return spread

        results = run_app(app, nranks=3)
        assert results == [[0], [0, 1], [0, 1, 2]]

    def test_exscan_matches_region_semantics(self):
        from repro.core import check_app

        def app(mpi):
            mpi.exscan([1], op="SUM")
            mpi.reduce_scatter([1.0] * mpi.size,
                               counts=[1] * mpi.size)

        report = check_app(app, nranks=3)
        assert not report.findings
        # both calls are global collectives: 2 cuts -> 3 regions
        assert report.stats.regions == 3
