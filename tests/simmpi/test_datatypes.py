"""Datatype constructors and data-map lowering tests."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.simmpi.datatypes import (
    BYTE, DOUBLE, INT, PRIMITIVES, DatatypeFactory, primitive_for_numpy,
)
from repro.util.errors import SimMPIError


@pytest.fixture
def factory():
    return DatatypeFactory()


class TestPrimitives:
    def test_sizes(self):
        assert INT.size == 4
        assert DOUBLE.size == 8
        assert BYTE.size == 1

    def test_datamaps(self):
        assert INT.datamap == ((0, 4),)
        assert INT.extent == 4

    def test_primitive_ids_negative_and_unique(self):
        ids = [t.type_id for t in PRIMITIVES.values()]
        assert all(i < 0 for i in ids)
        assert len(set(ids)) == len(ids)

    def test_numpy_mapping(self):
        assert primitive_for_numpy(np.dtype("f8")) is DOUBLE
        assert primitive_for_numpy(np.dtype("i4")) is INT

    def test_numpy_mapping_unknown(self):
        with pytest.raises(SimMPIError):
            primitive_for_numpy(np.dtype("c16"))

    def test_is_contiguous(self):
        assert INT.is_contiguous


class TestContiguous:
    def test_coalesces(self, factory):
        t = factory.contiguous(3, INT)
        assert t.datamap == ((0, 12),)
        assert t.extent == 12
        assert t.size == 12

    def test_of_derived(self, factory):
        v = factory.vector(2, 1, 2, INT)  # {(0,4),(8,4)}, extent 12
        t = factory.contiguous(2, v)
        # second replica starts at 12; its (0,4) segment abuts the first
        # replica's (8,4) segment, so they coalesce
        assert t.datamap == ((0, 4), (8, 8), (20, 4))

    def test_zero_count(self, factory):
        t = factory.contiguous(0, INT)
        assert t.datamap == ()
        assert t.size == 0

    def test_negative_count_rejected(self, factory):
        with pytest.raises(SimMPIError):
            factory.contiguous(-2, INT)

    def test_ids_increment(self, factory):
        a = factory.contiguous(1, INT)
        b = factory.contiguous(1, INT)
        assert (a.type_id, b.type_id) == (0, 1)


class TestVector:
    def test_basic(self, factory):
        t = factory.vector(count=3, blocklength=2, stride=4, old=INT)
        assert t.datamap == ((0, 8), (16, 8), (32, 8))
        assert t.extent == ((3 - 1) * 4 + 2) * 4
        assert t.size == 24

    def test_unit_stride_is_contiguous(self, factory):
        t = factory.vector(4, 1, 1, DOUBLE)
        assert t.datamap == ((0, 32),)

    def test_negative_rejected(self, factory):
        with pytest.raises(SimMPIError):
            factory.vector(-1, 1, 1, INT)


class TestIndexed:
    def test_basic(self, factory):
        t = factory.indexed([2, 1], [0, 4], INT)
        assert t.datamap == ((0, 8), (16, 4))

    def test_length_mismatch(self, factory):
        with pytest.raises(SimMPIError):
            factory.indexed([1, 2], [0], INT)


class TestStruct:
    def test_paper_example(self, factory):
        # two MPI_INTs separated by an 8-byte gap -> {(0,4),(12,4)}
        t = factory.struct([1, 1], [0, 12], [INT, INT])
        assert t.datamap == ((0, 4), (12, 4))
        assert t.base == "INT"

    def test_heterogeneous_loses_base(self, factory):
        t = factory.struct([1, 1], [0, 8], [INT, DOUBLE])
        assert t.base is None
        with pytest.raises(SimMPIError):
            t.numpy_dtype()

    def test_length_mismatch(self, factory):
        with pytest.raises(SimMPIError):
            factory.struct([1], [0, 4], [INT, INT])


class TestIntervals:
    def test_intervals_at_base(self, factory):
        t = factory.vector(2, 1, 2, INT)
        ivs = t.intervals(100, count=1)
        assert [(iv.start, iv.stop) for iv in ivs] == [(100, 104),
                                                       (108, 112)]

    def test_count_replication_respects_extent(self, factory):
        t = factory.struct([1], [0], [INT])  # extent 4
        ivs = t.intervals(0, count=3)
        assert ivs.byte_count() == 12


@given(st.integers(0, 5), st.integers(0, 4), st.integers(1, 6))
def test_prop_vector_size(count, blocklength, stride):
    factory = DatatypeFactory()
    t = factory.vector(count, blocklength, max(stride, blocklength), INT)
    assert t.size == count * blocklength * 4


@given(st.lists(st.integers(0, 3), min_size=1, max_size=5))
def test_prop_indexed_size_without_overlap(blocklengths):
    factory = DatatypeFactory()
    # lay blocks out far apart so they cannot overlap
    displacements = [i * 10 for i in range(len(blocklengths))]
    t = factory.indexed(blocklengths, displacements, INT)
    assert t.size == sum(blocklengths) * 4


@given(st.integers(1, 4), st.integers(1, 4))
def test_prop_nested_contiguous_extent(inner, outer):
    factory = DatatypeFactory()
    t = factory.contiguous(outer, factory.contiguous(inner, DOUBLE))
    assert t.extent == inner * outer * 8
    assert t.is_contiguous
