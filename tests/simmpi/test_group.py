"""Group algebra tests (MPI_Group_*)."""

import pytest

from repro.simmpi.group import Group
from repro.util.errors import SimMPIError


@pytest.fixture
def g8():
    return Group(range(8))


class TestBasics:
    def test_size(self, g8):
        assert g8.size == 8

    def test_duplicate_rejected(self):
        with pytest.raises(SimMPIError):
            Group([1, 1, 2])

    def test_rank_translation(self):
        g = Group([4, 2, 7])
        assert g.world_of_rank(1) == 2
        assert g.rank_of_world(7) == 2
        assert g.rank_of_world(99) == -1

    def test_world_of_rank_bounds(self, g8):
        with pytest.raises(SimMPIError):
            g8.world_of_rank(8)

    def test_contains(self, g8):
        assert 3 in g8
        assert 9 not in g8

    def test_equality(self):
        assert Group([1, 2]) == Group([1, 2])
        assert Group([1, 2]) != Group([2, 1])  # order matters


class TestSetAlgebra:
    def test_incl_preserves_order(self, g8):
        assert Group([0, 1, 2, 3]).incl([3, 0]).world_ranks == (3, 0)

    def test_incl_of_subgroup(self):
        g = Group([4, 5, 6])
        assert g.incl([2, 0]).world_ranks == (6, 4)

    def test_excl(self, g8):
        assert g8.excl([0, 7]).world_ranks == (1, 2, 3, 4, 5, 6)

    def test_union_order(self):
        a, b = Group([1, 3]), Group([3, 2])
        assert a.union(b).world_ranks == (1, 3, 2)

    def test_intersection(self):
        a, b = Group([1, 2, 3]), Group([3, 1])
        assert a.intersection(b).world_ranks == (1, 3)

    def test_difference(self):
        a, b = Group([1, 2, 3]), Group([2])
        assert a.difference(b).world_ranks == (1, 3)

    def test_translate_ranks(self):
        a = Group([5, 6, 7])
        b = Group([7, 5])
        assert a.translate_ranks([0, 1, 2], b) == (1, -1, 0)
