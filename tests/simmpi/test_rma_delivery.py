"""Delivery-engine semantics and fault injection: the nonblocking gap."""

import pytest

from repro.simmpi import INT, run_app
from repro.simmpi.faults import AdversarialDelivery, force_lazy_ops
from repro.simmpi.rma import DeliveryEngine, EAGER, LAZY, RANDOM, RMAOp
from repro.simmpi.runtime import World
from repro.util.errors import SimMPIError


def _stale_read_app(mpi):
    """Returns what rank 1 received: 1 if the Put read its origin at issue,
    99 if at epoch close (after the corrupting store)."""
    buf = mpi.alloc("buf", 1, datatype=INT, fill=0)
    win = mpi.win_create(buf)
    win.fence()
    if mpi.rank == 0:
        buf[0] = 1
        win.put(buf, target=1, origin_count=1)
        buf[0] = 99
    win.fence()
    out = buf[0]
    win.free()
    return out


class TestPolicies:
    def test_eager_reads_at_issue(self):
        assert run_app(_stale_read_app, nranks=2, delivery="eager")[1] == 1

    def test_lazy_reads_at_close(self):
        assert run_app(_stale_read_app, nranks=2, delivery="lazy")[1] == 99

    def test_random_is_one_of_the_two(self):
        outcomes = {
            run_app(_stale_read_app, nranks=2, delivery="random",
                    seed=seed)[1]
            for seed in range(10)
        }
        assert outcomes <= {1, 99}
        assert len(outcomes) == 2  # both timings explored across seeds

    def test_random_reproducible(self):
        a = run_app(_stale_read_app, nranks=2, delivery="random", seed=4)
        b = run_app(_stale_read_app, nranks=2, delivery="random", seed=4)
        assert a == b

    def test_unknown_policy_rejected(self):
        with pytest.raises(SimMPIError):
            DeliveryEngine(policy="psychic")


class TestFaultInjection:
    def test_force_lazy_single_op(self):
        world = World(2, delivery="eager")
        force_lazy_ops(world, [(0, 0, 0)])  # win 0, origin 0, first op
        results = world.run(_stale_read_app)
        assert results[1] == 99  # the eager policy was overridden

    def test_adversarial_alternates(self):
        engine = AdversarialDelivery(phase=0)
        ops = [RMAOp(kind="put", win_id=0, origin_world=0, target_world=1,
                     origin_buf=None, origin_offset=0, origin_count=1,
                     origin_dtype=None, target_disp=0, target_count=1,
                     target_dtype=None, seq=i) for i in range(4)]
        decisions = [engine.deliver_eagerly(op) for op in ops]
        assert decisions == [True, False, True, False]

    def test_adversarial_phase_flips(self):
        engine = AdversarialDelivery(phase=1)
        op = RMAOp(kind="put", win_id=0, origin_world=0, target_world=1,
                   origin_buf=None, origin_offset=0, origin_count=1,
                   origin_dtype=None, target_disp=0, target_count=1,
                   target_dtype=None, seq=0)
        assert engine.deliver_eagerly(op) is False

    def test_adversarial_in_world(self):
        world = World(2, delivery="eager")
        world.delivery = AdversarialDelivery(phase=1)  # first op lazy
        results = world.run(_stale_read_app)
        assert results[1] == 99


class TestOrderingWithinFlush:
    def test_pending_ops_apply_in_issue_order(self):
        def app(mpi):
            buf = mpi.alloc("buf", 1, datatype=INT, fill=0)
            one = mpi.alloc("one", 1, datatype=INT, fill=1)
            two = mpi.alloc("two", 1, datatype=INT, fill=2)
            win = mpi.win_create(buf)
            win.fence()
            if mpi.rank == 0:
                win.put(one, target=1, origin_count=1)
                win.put(two, target=1, origin_count=1)
            win.fence()
            out = buf[0]
            win.free()
            return out

        # both pending at the fence: later issue wins (issue-order apply)
        assert run_app(app, nranks=2, delivery="lazy")[1] == 2


class TestGetLazy:
    def test_lazy_get_origin_filled_at_close(self):
        def app(mpi):
            buf = mpi.alloc("buf", 1, datatype=INT, fill=7 * (mpi.rank + 1))
            dst = mpi.alloc("dst", 1, datatype=INT, fill=0)
            win = mpi.win_create(buf)
            win.fence()
            inside = None
            if mpi.rank == 0:
                win.get(dst, target=1, origin_count=1)
                inside = dst[0]  # before the close: still stale
            win.fence()
            after = dst[0] if mpi.rank == 0 else None
            win.free()
            return inside, after

        inside, after = run_app(app, nranks=2, delivery="lazy")[0]
        assert inside == 0  # the BT-broadcast hang in miniature
        assert after == 14
