"""AddressSpace and TrackedBuffer tests."""

import numpy as np
import pytest

from repro.simmpi.memory import AddressSpace, TrackedBuffer
from repro.util.errors import SimMPIError


@pytest.fixture
def space():
    return AddressSpace(rank=0)


class TestAddressSpace:
    def test_allocations_disjoint(self, space):
        a = space.allocate(100)
        b = space.allocate(50)
        assert b >= a + 100

    def test_alignment(self, space):
        space.allocate(3)
        b = space.allocate(8, align=64)
        assert b % 64 == 0

    def test_negative_rejected(self, space):
        with pytest.raises(ValueError):
            space.allocate(-1)


class TestTrackedBuffer:
    def test_fill(self, space):
        buf = TrackedBuffer(space, "b", 4, np.float64, fill=2.5)
        assert buf.read().tolist() == [2.5] * 4

    def test_scalar_load_store(self, space):
        buf = TrackedBuffer(space, "b", 4, np.int32)
        buf[2] = 7
        assert buf[2] == 7
        assert isinstance(buf[2], int)

    def test_negative_index(self, space):
        buf = TrackedBuffer(space, "b", 4, np.int32)
        buf[-1] = 9
        assert buf[3] == 9

    def test_out_of_range(self, space):
        buf = TrackedBuffer(space, "b", 4, np.int32)
        with pytest.raises(IndexError):
            buf[4]

    def test_slice_load_returns_copy(self, space):
        buf = TrackedBuffer(space, "b", 4, np.float64, fill=1.0)
        view = buf[0:2]
        view[0] = 99.0
        assert buf[0] == 1.0

    def test_strided_slice_rejected(self, space):
        buf = TrackedBuffer(space, "b", 8, np.float64)
        with pytest.raises(SimMPIError):
            buf[0:8:2]

    def test_addr_of(self, space):
        buf = TrackedBuffer(space, "b", 4, np.float64)
        assert buf.addr_of(2) == buf.base + 16

    def test_write_read_roundtrip(self, space):
        buf = TrackedBuffer(space, "b", 6, np.float64)
        buf.write([1, 2, 3], offset=2)
        assert buf.read(2, 3).tolist() == [1.0, 2.0, 3.0]

    def test_events_only_when_instrumented(self, space):
        events = []
        buf = TrackedBuffer(space, "b", 4, np.float64)
        buf.set_hook(lambda kind, b, addr, size:
                     events.append((kind, addr, size)))
        buf[0] = 1.0
        assert events == []  # not instrumented yet
        buf.instrumented = True
        buf[1] = 2.0
        _ = buf[1]
        assert events == [("store", buf.base + 8, 8),
                          ("load", buf.base + 8, 8)]

    def test_slice_event_size(self, space):
        events = []
        buf = TrackedBuffer(space, "b", 8, np.float64)
        buf.set_hook(lambda kind, b, addr, size:
                     events.append((kind, addr, size)))
        buf.instrumented = True
        buf[2:5] = [1, 2, 3]
        assert events == [("store", buf.base + 16, 24)]

    def test_raw_bytes_roundtrip(self, space):
        buf = TrackedBuffer(space, "b", 2, np.int32)
        buf.raw_write_bytes(4, (123).to_bytes(4, "little"))
        assert buf.raw_read_bytes(4, 4) == (123).to_bytes(4, "little")
        assert buf[1] == 123

    def test_raw_accesses_emit_no_events(self, space):
        events = []
        buf = TrackedBuffer(space, "b", 2, np.int32)
        buf.set_hook(lambda *a: events.append(a))
        buf.instrumented = True
        buf.raw_write_bytes(0, b"\x01\x02\x03\x04")
        buf.raw_read_bytes(0, 4)
        assert events == []

    def test_raw_out_of_bounds(self, space):
        buf = TrackedBuffer(space, "b", 2, np.int32)
        with pytest.raises(SimMPIError):
            buf.raw_read_bytes(4, 8)
        with pytest.raises(SimMPIError):
            buf.raw_write_bytes(-1, b"xx")

    def test_load_store_aliases(self, space):
        buf = TrackedBuffer(space, "b", 2, np.float64)
        buf.store(0, 3.5)
        assert buf.load(0) == 3.5

    def test_len_and_nbytes(self, space):
        buf = TrackedBuffer(space, "b", 5, np.int32)
        assert len(buf) == 5
        assert buf.nbytes == 20
        assert buf.end == buf.base + 20


class TestSliceEdgeCases:
    """Pin down ``_resolve``'s slice semantics (the bulk-lane producers
    lean on it, so every corner is load-bearing)."""

    @pytest.fixture
    def traced(self, space):
        events = []
        buf = TrackedBuffer(space, "b", 8, np.float64,
                            fill=0.0)
        buf.array[:] = np.arange(8, dtype=np.float64)
        buf.set_hook(lambda kind, b, addr, size:
                     events.append((kind, addr, size)))
        buf.instrumented = True
        return buf, events

    def test_negative_endpoints(self, traced):
        buf, events = traced
        assert buf[-3:-1].tolist() == [5.0, 6.0]
        assert events == [("load", buf.base + 5 * 8, 2 * 8)]

    def test_open_ended_slices(self, traced):
        buf, events = traced
        assert buf[:].tolist() == list(range(8))
        assert buf[6:].tolist() == [6.0, 7.0]
        assert buf[:2].tolist() == [0.0, 1.0]
        assert [e[2] for e in events] == [8 * 8, 2 * 8, 2 * 8]

    def test_empty_slice_emits_nothing(self, traced):
        buf, events = traced
        assert buf[3:3].size == 0
        assert buf[5:3].size == 0  # reversed: empty, not negative
        buf[4:4] = []
        assert events == []

    def test_step_error_names_step_and_alternative(self, traced):
        buf, _ = traced
        with pytest.raises(SimMPIError) as excinfo:
            buf[0:8:2]
        message = str(excinfo.value)
        assert "step 2" in message
        assert "read_rows" in message and "write_rows" in message
        with pytest.raises(SimMPIError):
            buf[::-1]

    def test_out_of_range_endpoints_raise_not_clamp(self, traced):
        buf, events = traced
        with pytest.raises(IndexError):
            buf[0:9]
        with pytest.raises(IndexError):
            buf[-9:2]
        with pytest.raises(IndexError):
            buf[9:]
        assert events == []  # rejected accesses never emit

    def test_stop_at_count_allowed(self, traced):
        buf, _ = traced
        assert buf[6:8].tolist() == [6.0, 7.0]
        assert buf[8:8].size == 0

    def test_scalar_negative_out_of_range(self, traced):
        buf, _ = traced
        with pytest.raises(IndexError):
            buf[-9]
        assert buf[-8] == 0.0
