"""Property tests for typed gather/scatter (datatype-driven byte movement)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.simmpi.datatypes import BYTE, INT, DatatypeFactory
from repro.simmpi.memory import AddressSpace, TrackedBuffer
from repro.simmpi.rma import gather_typed, scatter_typed


def make_buffer(nbytes, fill_pattern=True):
    buf = TrackedBuffer(AddressSpace(0), "b", nbytes, np.uint8)
    if fill_pattern:
        buf.raw_write_bytes(0, bytes(i % 251 for i in range(nbytes)))
    return buf


datatype_strategy = st.one_of(
    st.builds(lambda c: ("contig", c), st.integers(1, 4)),
    st.builds(lambda c, b, s: ("vector", c, b, max(s, b)),
              st.integers(1, 3), st.integers(1, 3), st.integers(1, 5)),
    st.builds(lambda ls, ds: ("indexed", ls, sorted(set(ds))),
              st.lists(st.integers(1, 2), min_size=1, max_size=3),
              st.lists(st.integers(0, 10), min_size=3, max_size=3)),
)


def build_datatype(spec):
    factory = DatatypeFactory()
    if spec[0] == "contig":
        return factory.contiguous(spec[1], INT)
    if spec[0] == "vector":
        return factory.vector(spec[1], spec[2], spec[3], INT)
    _tag, lens, disps = spec
    disps = disps[:len(lens)]
    lens = lens[:len(disps)]
    # keep blocks disjoint: space displacements apart
    disps = [d + i * 20 for i, d in enumerate(disps)]
    return factory.indexed(lens, disps, INT)


@given(datatype_strategy, st.integers(1, 3))
@settings(max_examples=60, deadline=None)
def test_prop_gather_scatter_roundtrip(spec, count):
    """scatter(gather(x)) restores exactly the bytes the datatype selects."""
    dtype = build_datatype(spec)
    span = dtype.extent * count + 64
    src = make_buffer(span)
    dst = make_buffer(span, fill_pattern=False)

    packed = gather_typed(src, 0, dtype, count)
    assert len(packed) == dtype.size * count

    scatter_typed(dst, 0, dtype, count, packed)
    for iv in dtype.intervals(0, count):
        assert dst.raw_read_bytes(iv.start, len(iv)) == \
            src.raw_read_bytes(iv.start, len(iv))


@given(datatype_strategy, st.integers(1, 3))
@settings(max_examples=60, deadline=None)
def test_prop_scatter_touches_only_selected_bytes(spec, count):
    dtype = build_datatype(spec)
    span = dtype.extent * count + 64
    dst = make_buffer(span)
    before = dst.raw_read_bytes(0, span)

    scatter_typed(dst, 0, dtype, count, b"\xff" * (dtype.size * count))
    selected = dtype.intervals(0, count)
    after = dst.raw_read_bytes(0, span)
    for offset in range(span):
        if selected.contains_point(offset):
            assert after[offset] == 0xFF
        else:
            assert after[offset] == before[offset]


@given(st.integers(0, 16), st.integers(1, 16))
@settings(max_examples=40, deadline=None)
def test_prop_byte_gather_is_slice(offset, length):
    buf = make_buffer(64)
    packed = gather_typed(buf, offset, BYTE, length) \
        if offset + length <= 64 else None
    if packed is not None:
        assert packed == buf.raw_read_bytes(offset, length)
