"""Point-to-point semantics: matching, wildcards, ordering, nonblocking."""

import pytest

from repro.simmpi import ANY_SOURCE, ANY_TAG, INT, run_app
from repro.util.errors import DeadlockError


class TestBlockingSendRecv:
    def test_buffer_payload(self):
        def app(mpi):
            buf = mpi.alloc("buf", 3, datatype=INT)
            if mpi.rank == 0:
                buf.write([1, 2, 3])
                mpi.send(buf, dest=1)
            else:
                mpi.recv(buf, source=0)
            return buf.read().tolist()

        assert run_app(app, nranks=2) == [[1, 2, 3], [1, 2, 3]]

    def test_object_payload(self):
        def app(mpi):
            if mpi.rank == 0:
                mpi.send({"k": 1}, dest=1, tag=7)
                return None
            payload, status = mpi.recv(source=0, tag=7)
            return payload, status.source, status.tag

        assert run_app(app, nranks=2)[1] == ({"k": 1}, 0, 7)

    def test_tag_selectivity(self):
        def app(mpi):
            if mpi.rank == 0:
                mpi.send("a", dest=1, tag=1)
                mpi.send("b", dest=1, tag=2)
            else:
                second, _ = mpi.recv(source=0, tag=2)
                first, _ = mpi.recv(source=0, tag=1)
                return first, second
            return None

        assert run_app(app, nranks=2)[1] == ("a", "b")

    def test_fifo_per_channel(self):
        def app(mpi):
            if mpi.rank == 0:
                for i in range(5):
                    mpi.send(i, dest=1, tag=0)
            else:
                return [mpi.recv(source=0, tag=0)[0] for _ in range(5)]
            return None

        assert run_app(app, nranks=2)[1] == [0, 1, 2, 3, 4]

    def test_any_source_any_tag(self):
        def app(mpi):
            if mpi.rank == 0:
                got = []
                for _ in range(2):
                    payload, status = mpi.recv(source=ANY_SOURCE,
                                               tag=ANY_TAG)
                    got.append((payload, status.source))
                return sorted(got)
            mpi.send(f"from{mpi.rank}", dest=0, tag=mpi.rank)
            return None

        assert run_app(app, nranks=3)[0] == [("from1", 1), ("from2", 2)]

    def test_recv_blocks_until_send(self):
        order = []

        def app(mpi):
            if mpi.rank == 0:
                payload, _ = mpi.recv(source=1)
                order.append("recv-done")
            else:
                for _ in range(3):
                    mpi.world.scheduler.yield_point(mpi.rank)
                order.append("sending")
                mpi.send("x", dest=0)

        run_app(app, nranks=2)
        assert order == ["sending", "recv-done"]

    def test_wrong_tag_deadlocks(self):
        def app(mpi):
            if mpi.rank == 0:
                mpi.send("x", dest=1, tag=1)
                mpi.barrier()
            else:
                mpi.recv(source=0, tag=2)
                mpi.barrier()

        with pytest.raises(DeadlockError):
            run_app(app, nranks=2)


class TestSendRecvCombined:
    def test_ring_exchange(self):
        def app(mpi):
            right = (mpi.rank + 1) % mpi.size
            left = (mpi.rank - 1) % mpi.size
            payload, _ = mpi.sendrecv(mpi.rank, dest=right, source=left)
            return payload

        assert run_app(app, nranks=4) == [3, 0, 1, 2]


class TestNonblocking:
    def test_isend_wait(self):
        def app(mpi):
            if mpi.rank == 0:
                req = mpi.isend("hello", dest=1)
                mpi.wait(req)
                return None
            payload, _ = mpi.recv(source=0)
            return payload

        assert run_app(app, nranks=2)[1] == "hello"

    def test_irecv_wait(self):
        def app(mpi):
            buf = mpi.alloc("buf", 2, datatype=INT)
            if mpi.rank == 0:
                buf.write([5, 6])
                mpi.send(buf, dest=1)
            else:
                req = mpi.irecv(buf, source=0)
                status = mpi.wait(req)
                return buf.read().tolist(), status.source
            return None

        assert run_app(app, nranks=2)[1] == ([5, 6], 0)

    def test_waitall(self):
        def app(mpi):
            if mpi.rank == 0:
                reqs = [mpi.isend(i, dest=1, tag=i) for i in range(3)]
                mpi.waitall(reqs)
                return None
            reqs = [mpi.irecv(source=0, tag=i) for i in range(3)]
            mpi.waitall(reqs)
            return [r.status.source for r in reqs]

        assert run_app(app, nranks=2)[1] == [0, 0, 0]

    def test_irecv_posted_before_send(self):
        def app(mpi):
            if mpi.rank == 1:
                req = mpi.irecv(source=0, tag=4)
                mpi.barrier()
                status = mpi.wait(req)
                return req._payload is not None and status.tag == 4
            mpi.barrier()
            mpi.send("late", dest=1, tag=4)
            return None

        assert run_app(app, nranks=2)[1] is True
