"""MPI-3 RMA extension tests: lock_all, flush, atomics (paper section V)."""

import pytest

from repro.simmpi import DOUBLE, INT, LOCK_SHARED, run_app
from repro.util.errors import RMAUsageError


class TestLockAll:
    def test_put_to_every_target(self):
        def app(mpi):
            buf = mpi.alloc("buf", 1, datatype=INT, fill=0)
            src = mpi.alloc("src", 1, datatype=INT, fill=mpi.rank + 1)
            win = mpi.win_create(buf)
            mpi.barrier()
            if mpi.rank == 0:
                win.lock_all()
                for target in range(1, mpi.size):
                    win.put(src, target=target, origin_count=1)
                win.unlock_all()
            mpi.barrier()
            out = buf[0]
            win.free()
            return out

        assert run_app(app, nranks=4, delivery="lazy") == [0, 1, 1, 1]

    def test_unlock_all_without_lock_is_noop(self):
        def app(mpi):
            buf = mpi.alloc("buf", 1, datatype=INT)
            win = mpi.win_create(buf)
            win.lock_all()
            win.unlock_all()
            win.unlock_all()  # nothing held: releases nothing
            mpi.barrier()
            win.free()

        run_app(app, nranks=2)

    def test_double_lock_all_rejected(self):
        def app(mpi):
            buf = mpi.alloc("buf", 1, datatype=INT)
            win = mpi.win_create(buf)
            win.lock_all()
            win.lock_all()

        with pytest.raises(RMAUsageError):
            run_app(app, nranks=2)


class TestFlush:
    def test_flush_completes_pending_put(self):
        def app(mpi):
            buf = mpi.alloc("buf", 1, datatype=INT, fill=0)
            src = mpi.alloc("src", 1, datatype=INT, fill=7)
            win = mpi.win_create(buf)
            mpi.barrier()
            observed = None
            if mpi.rank == 0:
                win.lock(1, LOCK_SHARED)
                win.put(src, target=1, origin_count=1)
                win.flush(1)         # completes NOW, not at unlock
                src[0] = 99          # safe: the Put already read src
                mpi.send("flushed", dest=1)
                mpi.recv(source=1)
                win.unlock(1)
            else:
                mpi.recv(source=0)
                observed = buf[0]    # must already be 7
                mpi.send("seen", dest=0)
            mpi.barrier()
            win.free()
            return observed

        # lazy delivery would defer to unlock without the flush
        assert run_app(app, nranks=2, delivery="lazy")[1] == 7

    def test_flush_outside_epoch_rejected(self):
        def app(mpi):
            buf = mpi.alloc("buf", 1, datatype=INT)
            win = mpi.win_create(buf)
            if mpi.rank == 0:
                win.flush(1)

        with pytest.raises(RMAUsageError, match="outside a passive"):
            run_app(app, nranks=2)

    def test_flush_all(self):
        def app(mpi):
            buf = mpi.alloc("buf", 1, datatype=INT, fill=0)
            src = mpi.alloc("src", 1, datatype=INT, fill=3)
            win = mpi.win_create(buf)
            mpi.barrier()
            if mpi.rank == 0:
                win.lock_all()
                for target in range(1, mpi.size):
                    win.put(src, target=target, origin_count=1)
                win.flush_all()
                checkpoint = True  # all landed here under any policy
                win.unlock_all()
            mpi.barrier()
            out = buf[0]
            win.free()
            return out

        assert run_app(app, nranks=3, delivery="lazy") == [0, 3, 3]


class TestWinAllocate:
    def test_allocate_exposes_and_transfers(self):
        def app(mpi):
            win = mpi.win_allocate("wbuf", 4, datatype=INT)
            buf = win.local_buffer
            win.fence()
            if mpi.rank == 0:
                buf.write([1, 2, 3, 4])
                win.put(buf, target=1)
            win.fence()
            out = buf.read().tolist()
            win.free()
            return out

        assert run_app(app, nranks=2, delivery="lazy")[1] == [1, 2, 3, 4]

    def test_allocated_buffer_is_instrumented(self):
        from repro.profiler.session import profile_run
        from repro.profiler.events import MemEvent

        def app(mpi):
            win = mpi.win_allocate("wbuf", 2, datatype=INT)
            win.fence()
            win.local_buffer[0] = 1
            win.fence()
            win.free()

        run = profile_run(app, nranks=2)
        vars_seen = {e.var for events in run.traces.all_events().values()
                     for e in events if isinstance(e, MemEvent)}
        assert "wbuf" in vars_seen  # window buffers tracked by definition


class TestAtomics:
    def test_fetch_and_op_sum(self):
        def app(mpi):
            buf = mpi.alloc("buf", 1, datatype=INT, fill=0)
            one = mpi.alloc("one", 1, datatype=INT, fill=1)
            old = mpi.alloc("old", 1, datatype=INT, fill=-1)
            win = mpi.win_create(buf)
            mpi.barrier()
            win.lock(0, LOCK_SHARED)
            win.fetch_and_op(one, old, target=0, op="SUM")
            win.unlock(0)
            mpi.barrier()
            total = buf[0]
            win.free()
            return old[0], total

        results = run_app(app, nranks=4, delivery="random", seed=2)
        olds = sorted(r[0] for r in results)
        assert olds == [0, 1, 2, 3]          # atomic: each sees a distinct old
        assert results[0][1] == 4            # final counter value

    def test_get_accumulate_fetches_old_values(self):
        def app(mpi):
            buf = mpi.alloc("buf", 2, datatype=DOUBLE, fill=10.0)
            upd = mpi.alloc("upd", 2, datatype=DOUBLE, fill=1.0)
            res = mpi.alloc("res", 2, datatype=DOUBLE, fill=0.0)
            win = mpi.win_create(buf)
            mpi.barrier()
            if mpi.rank == 1:
                win.lock(0, LOCK_SHARED)
                win.get_accumulate(upd, res, target=0, op="SUM")
                win.unlock(0)
            mpi.barrier()
            out = buf.read().tolist()
            win.free()
            return res.read().tolist(), out

        results = run_app(app, nranks=2, delivery="lazy")
        assert results[1][0] == [10.0, 10.0]   # fetched pre-update values
        assert results[0][1] == [11.0, 11.0]   # target updated

    def test_compare_and_swap(self):
        def app(mpi):
            buf = mpi.alloc("buf", 1, datatype=INT, fill=5)
            new = mpi.alloc("new", 1, datatype=INT, fill=9)
            cmp_ok = mpi.alloc("cmp_ok", 1, datatype=INT, fill=5)
            cmp_bad = mpi.alloc("cmp_bad", 1, datatype=INT, fill=0)
            res = mpi.alloc("res", 1, datatype=INT, fill=-1)
            win = mpi.win_create(buf)
            mpi.barrier()
            fetched = None
            if mpi.rank == 1:
                win.lock(0, LOCK_SHARED)
                win.compare_and_swap(new, cmp_bad, res, target=0)
                win.flush(0)
                first = res[0]            # swap must NOT have happened
                win.compare_and_swap(new, cmp_ok, res, target=0)
                win.unlock(0)
                second = res[0]           # this one succeeded
                fetched = (first, second)
            mpi.barrier()
            out = buf[0]
            win.free()
            return fetched, out

        results = run_app(app, nranks=2, delivery="eager")
        assert results[0][1] == 9            # swapped in the end
        assert results[1][0] == (5, 5)       # both fetches saw the old 5
