"""Reduction-operation table tests."""

import numpy as np
import pytest

from repro.simmpi.ops import ACCUMULATE_OPS, REDUCE_OPS, combine
from repro.util.errors import SimMPIError


class TestCombine:
    @pytest.mark.parametrize("op,a,b,expected", [
        ("SUM", [1, 2], [3, 4], [4, 6]),
        ("PROD", [2, 3], [4, 5], [8, 15]),
        ("MIN", [1, 9], [5, 2], [1, 2]),
        ("MAX", [1, 9], [5, 2], [5, 9]),
        ("BAND", [0b1100], [0b1010], [0b1000]),
        ("BOR", [0b1100], [0b1010], [0b1110]),
        ("BXOR", [0b1100], [0b1010], [0b0110]),
        ("REPLACE", [1, 2], [8, 9], [8, 9]),
    ])
    def test_integer_ops(self, op, a, b, expected):
        out = combine(op, np.array(a), np.array(b))
        assert out.tolist() == expected

    def test_land(self):
        out = combine("LAND", np.array([1, 0, 2]), np.array([1, 1, 0]))
        assert out.tolist() == [1, 0, 0]

    def test_lor(self):
        out = combine("LOR", np.array([0, 0, 2]), np.array([0, 1, 0]))
        assert out.tolist() == [0, 1, 1]

    def test_unknown_op(self):
        with pytest.raises(SimMPIError):
            combine("AVG", np.array([1]), np.array([2]))


class TestOpSets:
    def test_replace_only_in_accumulate(self):
        assert "REPLACE" in ACCUMULATE_OPS
        assert "REPLACE" not in REDUCE_OPS

    def test_reduce_ops_subset_of_accumulate(self):
        assert REDUCE_OPS < ACCUMULATE_OPS
