"""Error-path coverage for runtime internals."""

import pytest

from repro.simmpi import INT, run_app
from repro.simmpi.collectives import CollectiveEngine
from repro.simmpi.comm import Comm
from repro.simmpi.group import Group
from repro.simmpi.window import Window
from repro.util.errors import RMAUsageError, SimMPIError


class TestCollectiveEngine:
    def test_double_arrival_rejected(self):
        engine = CollectiveEngine()
        comm = Comm(0, Group(range(2)))
        engine.enter(comm, 0, "Barrier")
        with pytest.raises(SimMPIError, match="double-arrived"):
            # same rank arriving twice at its own next slot index would be
            # slot 1; force a repeat of slot 0 by resetting the counter
            engine._counters[(0, 0)] = 0
            engine.enter(comm, 0, "Barrier")

    def test_name_mismatch_rejected(self):
        engine = CollectiveEngine()
        comm = Comm(0, Group(range(2)))
        engine.enter(comm, 0, "Barrier")
        with pytest.raises(SimMPIError, match="mismatch"):
            engine.enter(comm, 1, "Bcast")

    def test_slot_freed_after_all_leave(self):
        engine = CollectiveEngine()
        comm = Comm(0, Group(range(2)))
        i0, slot = engine.enter(comm, 0, "Barrier")
        i1, slot_b = engine.enter(comm, 1, "Barrier")
        assert slot is slot_b and slot.full
        engine.leave(comm, i0, slot, 0)
        assert (comm.comm_id, i0) in engine._slots
        engine.leave(comm, i1, slot, 1)
        assert (comm.comm_id, i0) not in engine._slots


class TestWindowInternals:
    def test_release_unheld_lock_rejected(self):
        window = Window(0, Comm(0, Group(range(2))))
        with pytest.raises(RMAUsageError, match="without holding"):
            window.release_lock(target=1, origin=0)

    def test_buffer_of_memoryless_rank(self):
        window = Window(0, Comm(0, Group(range(2))))
        window.buffers[0] = None
        with pytest.raises(RMAUsageError, match="exposes no memory"):
            window.buffer_of(0)

    def test_double_post_rejected(self):
        def app(mpi):
            buf = mpi.alloc("buf", 1, datatype=INT)
            win = mpi.win_create(buf)
            world = mpi.comm_group()
            if mpi.rank == 0:
                win.post(world.incl([1]))
                win.post(world.incl([1]))

        with pytest.raises(RMAUsageError, match="already open"):
            run_app(app, nranks=2)

    def test_double_start_rejected(self):
        def app(mpi):
            buf = mpi.alloc("buf", 1, datatype=INT)
            win = mpi.win_create(buf)
            world = mpi.comm_group()
            if mpi.rank == 1:
                win.post(world.incl([0]))
            elif mpi.rank == 0:
                win.start(world.incl([1]))
                win.start(world.incl([1]))

        with pytest.raises(RMAUsageError, match="already open"):
            run_app(app, nranks=2)

    def test_wait_without_post_rejected(self):
        def app(mpi):
            buf = mpi.alloc("buf", 1, datatype=INT)
            win = mpi.win_create(buf)
            if mpi.rank == 0:
                win.wait()

        with pytest.raises(RMAUsageError, match="without Win_post"):
            run_app(app, nranks=2)

    def test_lock_with_bogus_type_rejected(self):
        def app(mpi):
            buf = mpi.alloc("buf", 1, datatype=INT)
            win = mpi.win_create(buf)
            win.lock(0, "mostly-exclusive")

        with pytest.raises(RMAUsageError, match="unknown lock type"):
            run_app(app, nranks=2)

    def test_put_from_plain_list_rejected(self):
        def app(mpi):
            buf = mpi.alloc("buf", 2, datatype=INT)
            win = mpi.win_create(buf)
            win.fence()
            if mpi.rank == 0:
                win.put([1, 2], target=1, origin_count=2)
            win.fence()

        with pytest.raises(RMAUsageError, match="TrackedBuffer"):
            run_app(app, nranks=2)

    def test_win_create_outside_comm_rejected(self):
        def app(mpi):
            sub = mpi.comm_split(color=0 if mpi.rank == 0 else -1)
            if mpi.rank == 1:
                buf = mpi.alloc("buf", 1, datatype=INT)
                mpi.win_create(buf, comm=sub)  # sub is None here

        # rank 1 got no communicator; passing None means COMM_WORLD, so
        # instead pass rank 0's comm shape via a direct construction
        from repro.simmpi.runtime import World

        world = World(2)

        def body(mpi):
            sub_comm = Comm(99, Group([0]))
            world.comms[99] = sub_comm
            if mpi.rank == 1:
                buf = mpi.alloc("buf", 1, datatype=INT)
                mpi.win_create(buf, comm=sub_comm)

        with pytest.raises(SimMPIError, match="not a member"):
            world.run(body)
