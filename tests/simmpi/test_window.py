"""RMA window semantics: fence, lock/unlock, PSCW, usage validation."""

import pytest

from repro.simmpi import (
    DOUBLE, INT, LOCK_EXCLUSIVE, LOCK_SHARED, SUM, run_app,
)
from repro.util.errors import DeadlockError, RMAUsageError


class TestFenceEpochs:
    @pytest.mark.parametrize("delivery", ["eager", "lazy", "random"])
    def test_put_visible_after_fence(self, delivery):
        def app(mpi):
            buf = mpi.alloc("buf", 4, datatype=INT, fill=0)
            win = mpi.win_create(buf)
            win.fence()
            if mpi.rank == 0:
                buf.write([1, 2, 3, 4])
                win.put(buf, target=1)
            win.fence()
            out = buf.read().tolist()
            win.free()
            return out

        assert run_app(app, nranks=2, delivery=delivery)[1] == [1, 2, 3, 4]

    def test_lazy_put_reads_origin_at_fence(self):
        """The defining nonblocking behaviour: under lazy delivery a Put
        transmits whatever the origin buffer holds at epoch close."""
        def app(mpi):
            buf = mpi.alloc("buf", 1, datatype=INT, fill=0)
            win = mpi.win_create(buf)
            win.fence()
            if mpi.rank == 0:
                buf[0] = 1
                win.put(buf, target=1, origin_count=1)
                buf[0] = 99  # the buggy overwrite
            win.fence()
            out = buf[0]
            win.free()
            return out

        assert run_app(app, nranks=2, delivery="lazy")[1] == 99
        assert run_app(app, nranks=2, delivery="eager")[1] == 1

    def test_get_roundtrip(self):
        def app(mpi):
            buf = mpi.alloc("buf", 2, datatype=DOUBLE,
                            fill=float(mpi.rank + 1))
            dst = mpi.alloc("dst", 2, datatype=DOUBLE)
            win = mpi.win_create(buf)
            win.fence()
            win.get(dst, target=(mpi.rank + 1) % mpi.size)
            win.fence()
            out = dst.read().tolist()
            win.free()
            return out

        assert run_app(app, nranks=3) == [[2.0, 2.0], [3.0, 3.0],
                                          [1.0, 1.0]]

    def test_put_outside_epoch_rejected(self):
        def app(mpi):
            buf = mpi.alloc("buf", 1, datatype=INT)
            win = mpi.win_create(buf)
            if mpi.rank == 0:
                win.put(buf, target=1, origin_count=1)  # no fence yet

        with pytest.raises(RMAUsageError, match="outside any access epoch"):
            run_app(app, nranks=2)

    def test_put_beyond_window_rejected(self):
        def app(mpi):
            buf = mpi.alloc("buf", 4, datatype=INT)
            win = mpi.win_create(buf)
            win.fence()
            if mpi.rank == 0:
                win.put(buf, target=1, target_disp=3, origin_count=4)
            win.fence()

        with pytest.raises(RMAUsageError, match="exceeds window size"):
            run_app(app, nranks=2)

    def test_target_disp_units(self):
        def app(mpi):
            buf = mpi.alloc("buf", 4, datatype=DOUBLE, fill=0.0)
            src = mpi.alloc("src", 1, datatype=DOUBLE, fill=5.0)
            win = mpi.win_create(buf)  # disp_unit = 8
            win.fence()
            if mpi.rank == 0:
                win.put(src, target=1, target_disp=2, origin_count=1)
            win.fence()
            out = buf.read().tolist()
            win.free()
            return out

        assert run_app(app, nranks=2)[1] == [0.0, 0.0, 5.0, 0.0]


class TestAccumulate:
    @pytest.mark.parametrize("delivery", ["eager", "lazy"])
    def test_concurrent_sum(self, delivery):
        def app(mpi):
            buf = mpi.alloc("buf", 1, datatype=DOUBLE, fill=0.0)
            src = mpi.alloc("src", 1, datatype=DOUBLE,
                            fill=float(mpi.rank + 1))
            win = mpi.win_create(buf)
            win.fence()
            win.accumulate(src, target=0, op=SUM, origin_count=1)
            win.fence()
            out = buf[0]
            win.free()
            return out

        results = run_app(app, nranks=4, delivery=delivery)
        assert results[0] == 1 + 2 + 3 + 4

    def test_replace(self):
        def app(mpi):
            buf = mpi.alloc("buf", 2, datatype=INT, fill=0)
            src = mpi.alloc("src", 2, datatype=INT, fill=9)
            win = mpi.win_create(buf)
            win.fence()
            if mpi.rank == 1:
                win.accumulate(src, target=0, op="REPLACE")
            win.fence()
            out = buf.read().tolist()
            win.free()
            return out

        assert run_app(app, nranks=2)[0] == [9, 9]

    def test_type_mismatch_rejected(self):
        def app(mpi):
            buf = mpi.alloc("buf", 4, datatype=INT)
            src = mpi.alloc("src", 2, datatype=DOUBLE)
            win = mpi.win_create(buf)
            win.fence()
            if mpi.rank == 0:
                win.accumulate(src, target=1, op=SUM, origin_count=1,
                               target_count=2)
            win.fence()

        from repro.util.errors import SimMPIError
        with pytest.raises(SimMPIError):
            run_app(app, nranks=2)


class TestLocks:
    def test_exclusive_serializes(self):
        """Read-modify-write under exclusive locks loses no updates.

        Eager delivery makes the Get's value available inside the epoch,
        so the increment chain is atomic under lock serialization.  (With
        lazy delivery reading ``dst`` inside the epoch would itself be the
        Figure-1 consistency bug.)
        """
        def app(mpi):
            buf = mpi.alloc("buf", 1, datatype=DOUBLE, fill=0.0)
            src = mpi.alloc("src", 1, datatype=DOUBLE)
            dst = mpi.alloc("dst", 1, datatype=DOUBLE)
            win = mpi.win_create(buf)
            mpi.barrier()
            if mpi.rank != 0:
                win.lock(0, LOCK_EXCLUSIVE)
                win.get(dst, target=0, origin_count=1)
                src[0] = dst[0] + 1.0
                win.put(src, target=0, origin_count=1)
                win.unlock(0)
            mpi.barrier()
            out = buf[0]
            win.free()
            return out

        results = run_app(app, nranks=5, sched_policy="random", seed=3,
                          delivery="eager")
        assert results[0] == 4.0

    def test_unlock_without_lock_rejected(self):
        def app(mpi):
            buf = mpi.alloc("buf", 1, datatype=INT)
            win = mpi.win_create(buf)
            if mpi.rank == 0:
                win.unlock(1)

        with pytest.raises(RMAUsageError, match="without a held lock"):
            run_app(app, nranks=2)

    def test_double_lock_same_target_rejected(self):
        def app(mpi):
            buf = mpi.alloc("buf", 1, datatype=INT)
            win = mpi.win_create(buf)
            if mpi.rank == 0:
                win.lock(1, LOCK_SHARED)
                win.lock(1, LOCK_SHARED)

        with pytest.raises(RMAUsageError, match="already holds a lock"):
            run_app(app, nranks=2)

    def test_shared_locks_coexist(self):
        """Two ranks hold shared locks on the same target simultaneously;
        with exclusive locks the same schedule would serialize."""
        def app(mpi):
            buf = mpi.alloc("buf", 4, datatype=INT, fill=0)
            dst = mpi.alloc("dst", 1, datatype=INT)
            win = mpi.win_create(buf)
            mpi.barrier()
            if mpi.rank in (1, 2):
                win.lock(0, LOCK_SHARED)
                mpi.barrier()  # both must be inside their epoch to pass
                win.get(dst, target=0, origin_count=1)
                win.unlock(0)
            else:
                mpi.barrier()
            mpi.barrier()
            win.free()

        run_app(app, nranks=3)  # deadlock would be raised if they excluded

    def test_exclusive_blocks_second_locker(self):
        def app(mpi):
            buf = mpi.alloc("buf", 1, datatype=INT)
            win = mpi.win_create(buf)
            mpi.barrier()
            if mpi.rank in (1, 2):
                win.lock(0, LOCK_EXCLUSIVE)
                mpi.barrier()  # both inside simultaneously: impossible
                win.unlock(0)
            else:
                mpi.barrier()

        with pytest.raises(DeadlockError):
            run_app(app, nranks=3)


class TestPSCW:
    def test_basic_transfer(self):
        def app(mpi):
            buf = mpi.alloc("buf", 1, datatype=INT, fill=0)
            src = mpi.alloc("src", 1, datatype=INT, fill=42)
            win = mpi.win_create(buf)
            world = mpi.comm_group()
            if mpi.rank == 0:
                win.start(world.incl([1]))
                win.put(src, target=1, origin_count=1)
                win.complete()
                received = None
            else:
                win.post(world.incl([0]))
                win.wait()
                received = buf[0]
            mpi.barrier()
            win.free()
            return received

        assert run_app(app, nranks=2, delivery="lazy")[1] == 42

    def test_start_blocks_until_post(self):
        order = []

        def app(mpi):
            buf = mpi.alloc("buf", 1, datatype=INT)
            win = mpi.win_create(buf)
            world = mpi.comm_group()
            if mpi.rank == 0:
                win.start(world.incl([1]))
                order.append("started")
                win.complete()
            else:
                for _ in range(4):
                    mpi.world.scheduler.yield_point(mpi.rank)
                order.append("posting")
                win.post(world.incl([0]))
                win.wait()
            mpi.barrier()
            win.free()

        run_app(app, nranks=2)
        assert order == ["posting", "started"]

    def test_wait_blocks_until_complete(self):
        def app(mpi):
            buf = mpi.alloc("buf", 1, datatype=INT)
            win = mpi.win_create(buf)
            world = mpi.comm_group()
            if mpi.rank == 0:
                win.post(world.incl([1, 2]))
                win.wait()
                return "exposed"
            win.start(world.incl([0]))
            win.complete()
            return "accessed"

        assert run_app(app, nranks=3)[0] == "exposed"

    def test_complete_without_start_rejected(self):
        def app(mpi):
            buf = mpi.alloc("buf", 1, datatype=INT)
            win = mpi.win_create(buf)
            if mpi.rank == 0:
                win.complete()

        with pytest.raises(RMAUsageError, match="without an open access"):
            run_app(app, nranks=2)

    def test_put_to_nonexposed_target_rejected(self):
        def app(mpi):
            buf = mpi.alloc("buf", 1, datatype=INT)
            win = mpi.win_create(buf)
            world = mpi.comm_group()
            if mpi.rank == 0:
                win.start(world.incl([1]))
                win.put(buf, target=2, origin_count=1)  # 2 not in group
                win.complete()
            elif mpi.rank == 1:
                win.post(world.incl([0]))
                win.wait()

        with pytest.raises(RMAUsageError, match="outside any access epoch"):
            run_app(app, nranks=3)


class TestWinLifecycle:
    def test_free_with_pending_rejected(self):
        def app(mpi):
            buf = mpi.alloc("buf", 1, datatype=INT)
            win = mpi.win_create(buf)
            win.fence()
            if mpi.rank == 0:
                win.put(buf, target=1, origin_count=1)
                win.free()  # without closing the epoch
            else:
                win.free()

        with pytest.raises(RMAUsageError, match="pending RMA"):
            run_app(app, nranks=2, delivery="lazy")

    def test_use_after_free_rejected(self):
        def app(mpi):
            buf = mpi.alloc("buf", 1, datatype=INT)
            win = mpi.win_create(buf)
            win.free()
            win.fence()

        with pytest.raises(RMAUsageError, match="already freed"):
            run_app(app, nranks=2)

    def test_window_on_subcomm(self):
        def app(mpi):
            sub = mpi.comm_split(color=0 if mpi.rank < 2 else 1,
                                 key=mpi.rank)
            buf = mpi.alloc("buf", 1, datatype=INT, fill=mpi.rank)
            win = mpi.win_create(buf, comm=sub)
            win.fence()
            if mpi.comm_rank(sub) == 0:
                win.put(buf, target=1, origin_count=1)
            win.fence()
            out = buf[0]
            win.free()
            return out

        # within each pair, rank-0-of-pair's value lands at rank 1 of pair
        assert run_app(app, nranks=4) == [0, 0, 2, 2]
