"""Structured logger tests: thresholds, fields, JSON mode."""

import io
import json

import pytest

from repro.obs.logging import LEVELS, ObsLogger, level_value


def make_logger(**kwargs):
    stream = io.StringIO()
    return ObsLogger(stream=stream, **kwargs), stream


class TestLevels:
    def test_default_info_threshold(self):
        log, stream = make_logger()
        log.debug("hidden")
        log.info("shown")
        assert stream.getvalue() == "shown\n"

    def test_error_always_above_info(self):
        log, stream = make_logger()
        log.error("bad")
        assert "bad" in stream.getvalue()

    def test_quiet_silences_everything(self):
        log, stream = make_logger(level="quiet")
        log.error("bad")
        log.info("info")
        assert stream.getvalue() == ""

    def test_debug_opens_up(self):
        log, stream = make_logger(level="debug")
        log.debug("chatter")
        assert "chatter" in stream.getvalue()

    def test_set_level(self):
        log, stream = make_logger()
        log.set_level("error")
        log.warning("hidden")
        log.error("shown")
        assert stream.getvalue() == "shown\n"

    def test_enabled_for(self):
        log, _ = make_logger(level="warning")
        assert log.enabled_for("error")
        assert not log.enabled_for("info")

    def test_unknown_level_rejected(self):
        with pytest.raises(ValueError):
            ObsLogger(level="verbose")
        log, _ = make_logger()
        with pytest.raises(ValueError):
            log.log("loud", "x")

    def test_level_ordering(self):
        assert (level_value("debug") < level_value("info")
                < level_value("warning") < level_value("error")
                < level_value("quiet"))
        assert set(LEVELS) == {"debug", "info", "warning", "error", "quiet"}


class TestStructure:
    def test_fields_appended(self):
        log, stream = make_logger()
        log.info("ran", app="lu", ranks=4)
        assert stream.getvalue() == "ran app=lu ranks=4\n"

    def test_fields_only(self):
        log, stream = make_logger()
        log.info("", events=7)
        assert stream.getvalue() == "events=7\n"

    def test_json_mode(self):
        log, stream = make_logger(json_mode=True)
        log.warning("slow flush", rank=2, seconds=0.5)
        payload = json.loads(stream.getvalue())
        assert payload == {"level": "warning", "msg": "slow flush",
                           "rank": 2, "seconds": 0.5}

    def test_default_stream_is_stdout(self, capsys):
        log = ObsLogger()
        log.info("to stdout")
        assert capsys.readouterr().out == "to stdout\n"
