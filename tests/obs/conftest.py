"""Observability tests share one invariant: the global recorder is
restored to the disabled default after every test."""

import pytest

from repro import obs


@pytest.fixture(autouse=True)
def _reset_obs():
    yield
    obs.reset()
