"""RunReport, run ledger, and dashboard rendering."""

import json
import os

import pytest

from repro import api, obs
from repro.core.config import CheckConfig
from repro.obs.dashboard import (
    render_compare_text, render_history_text, render_run_html,
    render_run_text,
)
from repro.obs.ledger import RunLedger, compare_runs, default_ledger_dir
from repro.obs.report import RunReport, build_run_report


@pytest.fixture(scope="module")
def profiled():
    """One profiled bug case that is known to produce findings."""
    from repro.apps.registry import BUG_CASES
    for case in BUG_CASES:
        run = api.run(case.app, min(case.nranks, 4),
                      params=case.params(True), trace_format="binary")
        if api.check(run.traces).findings:
            return run
    pytest.fail("no bundled bug case produced findings")


def checked_report(profiled, **overrides):
    obs.configure(enabled=True)
    try:
        report = api.check(profiled.traces, **overrides)
        return build_run_report(report, CheckConfig(**overrides),
                                traces=profiled.traces,
                                command="test-cmd", app="racy")
    finally:
        obs.reset()


class TestRunReport:
    def test_build_populates_sections(self, profiled):
        rr = checked_report(profiled)
        assert len(rr.run_id) == 12
        assert rr.app == "racy"
        assert rr.command == "test-cmd"
        assert rr.config["engine"] == "sweep"
        assert rr.config_digest
        assert len(rr.trace_digests) == rr.ingest["nranks"]
        assert rr.phases and "preprocess" in rr.phases
        for timing in rr.phases.values():
            assert timing["wall"] >= 0 and timing["cpu"] >= 0
        assert rr.ingest["nranks"] >= 2
        assert rr.ingest["events"] > 0
        assert rr.peak_rss_bytes > 0
        assert rr.findings["errors"] + rr.findings["warnings"] >= 1
        detail = rr.findings["details"][0]
        assert detail["provenance"]
        assert detail["context"]["engine"] == "sweep"

    def test_funnel_counters_surface(self, profiled):
        rr = checked_report(profiled)
        assert rr.funnel, "no candidate-pair funnel recorded"
        assert all("/" in stage for stage in rr.funnel)

    def test_incremental_cache_attribution(self, profiled, tmp_path):
        cache_dir = str(tmp_path / "cache")
        cold = checked_report(profiled, incremental=True,
                              cache_dir=cache_dir)
        assert cold.cache["shards"].get("miss", 0) > 0
        assert cold.cache["per_shard"]
        warm = checked_report(profiled, incremental=True,
                              cache_dir=cache_dir)
        assert warm.cache["shards"].get("hit", 0) > 0

    def test_roundtrip(self, profiled):
        rr = checked_report(profiled)
        clone = RunReport.from_dict(json.loads(json.dumps(rr.to_dict())))
        assert clone.to_dict() == rr.to_dict()

    def test_run_ids_unique(self, profiled):
        a = checked_report(profiled)
        b = checked_report(profiled)
        assert a.run_id != b.run_id

    def test_disabled_recorder_still_wellformed(self, profiled):
        report = api.check(profiled.traces)
        rr = build_run_report(report, CheckConfig(),
                              traces=profiled.traces)
        assert rr.phases  # wall timings come from CheckStats regardless
        assert rr.funnel == {} and rr.cache == {}


class TestRunLedger:
    def test_default_dir_env_override(self, monkeypatch, tmp_path):
        monkeypatch.setenv("MCCHECKER_LEDGER_DIR", str(tmp_path))
        assert default_ledger_dir() == str(tmp_path)

    def test_append_entries_last_find(self, profiled, tmp_path):
        ledger = RunLedger(str(tmp_path / "ledger"))
        first = checked_report(profiled)
        second = checked_report(profiled)
        ledger.append(first)
        ledger.append(second)
        entries = ledger.entries()
        assert [e.run_id for e in entries] == [first.run_id,
                                              second.run_id]
        assert ledger.last().run_id == second.run_id
        assert ledger.find(first.run_id[:6]).run_id == first.run_id
        assert ledger.find("nonexistent") is None
        assert ledger.entries(limit=1)[0].run_id == second.run_id
        assert ledger.entries(app="racy") and \
            not ledger.entries(app="other")

    def test_corrupt_lines_skipped(self, profiled, tmp_path):
        ledger = RunLedger(str(tmp_path / "ledger"))
        rr = checked_report(profiled)
        ledger.append(rr)
        with open(ledger.path, "a", encoding="utf-8") as fh:
            fh.write("{torn json\n")
        ledger.append(rr)
        assert len(ledger.entries()) == 2

    def test_empty_ledger(self, tmp_path):
        ledger = RunLedger(str(tmp_path / "nope"))
        assert ledger.entries() == []
        assert ledger.last() is None


class TestCompareRuns:
    def _pair(self, profiled):
        base = checked_report(profiled)
        cur = RunReport.from_dict(base.to_dict())
        return cur, base

    def test_identical_runs_ok(self, profiled):
        cur, base = self._pair(profiled)
        comparison = compare_runs(cur, base)
        assert comparison["ok"]
        assert comparison["same_config"] and comparison["same_traces"]

    def test_regression_flagged(self, profiled):
        cur, base = self._pair(profiled)
        cur.elapsed_seconds = base.elapsed_seconds * 10 + 1.0
        comparison = compare_runs(cur, base, tolerance=0.25)
        assert not comparison["ok"]
        assert "elapsed_seconds" in comparison["regressions"]

    def test_tiny_phase_noise_ignored(self, profiled):
        cur, base = self._pair(profiled)
        for timing in cur.phases.values():  # sub-10ms phases: all noise
            timing["wall"] = min(timing["wall"], 0.009) * 3
        comparison = compare_runs(
            cur, base, tolerance=10.0)  # elapsed/rss stay in band
        assert not any(m.startswith("phase/")
                       for m in comparison["regressions"])


class TestDashboard:
    def test_text_rendering(self, profiled):
        rr = checked_report(profiled)
        text = render_run_text(rr)
        assert rr.run_id in text
        assert "phases:" in text and "findings:" in text
        assert "provenance:" in text

    def test_history_rendering(self, profiled):
        rr = checked_report(profiled)
        out = render_history_text([rr])
        assert rr.run_id in out
        assert render_history_text([]) == "ledger is empty"

    def test_compare_rendering(self, profiled):
        base = checked_report(profiled)
        cur = RunReport.from_dict(base.to_dict())
        cur.elapsed_seconds = base.elapsed_seconds * 10 + 1.0
        out = render_compare_text(compare_runs(cur, base))
        assert "REGRESSION" in out and "elapsed_seconds" in out

    def test_html_self_contained(self, profiled, tmp_path):
        rr = checked_report(profiled, incremental=True,
                            cache_dir=str(tmp_path / "cache"))
        html_doc = render_run_html(rr)
        assert html_doc.startswith("<!doctype html>")
        for marker in ("Phase timeline", "Candidate-pair funnel",
                       "Incremental cache", "Findings", "<svg",
                       rr.run_id):
            assert marker in html_doc
        assert "<script" not in html_doc  # no JS: opens anywhere
        assert "href=" not in html_doc    # no external resources

    def test_html_escapes_content(self):
        rr = RunReport(run_id="x" * 12, created="2026-01-01T00:00:00Z",
                       command="check <&> \"quotes\"", app="<img>")
        html_doc = render_run_html(rr)
        assert "<img>" not in html_doc
        assert "&lt;img&gt;" in html_doc
