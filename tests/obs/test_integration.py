"""End-to-end observability: instrumented pipeline layers and CLI exports."""

import json

import pytest

from repro import obs
from repro.apps.emulate import emulate
from repro.apps.lu import lu
from repro.cli import main
from repro.core.checker import MCChecker, check_traces
from repro.profiler.session import baseline_run, profile_run


@pytest.fixture
def enabled():
    rec = obs.configure(enabled=True)
    yield rec
    obs.reset()


class TestPipelineSpans:
    def test_analyzer_phases_all_spanned(self, enabled, tmp_path):
        run = profile_run(lu, 2, params=dict(n=10),
                          trace_dir=str(tmp_path))
        check_traces(run.traces)
        names = {r.name for r in enabled.spans.records()}
        for phase in MCChecker.PHASES:
            assert f"analyzer.{phase}" in names
        assert "analyzer.run" in names
        assert "profiler.run" in names

    def test_phase_seconds_match_span_durations(self, enabled, tmp_path):
        run = profile_run(lu, 2, params=dict(n=10),
                          trace_dir=str(tmp_path))
        report = check_traces(run.traces)
        for phase in MCChecker.PHASES:
            span, = enabled.spans.by_name(f"analyzer.{phase}")
            assert report.stats.phase_seconds[phase] == \
                pytest.approx(span.duration)

    def test_phase_seconds_populated_when_disabled(self, tmp_path):
        assert not obs.is_enabled()
        run = profile_run(lu, 2, params=dict(n=10),
                          trace_dir=str(tmp_path))
        report = check_traces(run.traces)
        assert set(report.stats.phase_seconds) == set(MCChecker.PHASES)
        assert report.stats.total_seconds > 0

    def test_profiled_run_elapsed_equals_span(self, enabled, tmp_path):
        run = profile_run(lu, 2, params=dict(n=10),
                          trace_dir=str(tmp_path))
        span, = enabled.spans.by_name("profiler.run")
        assert run.elapsed == span.duration

    def test_baseline_run_spanned(self, enabled):
        elapsed = baseline_run(lu, 2, params=dict(n=10))
        span, = enabled.spans.by_name("profiler.baseline")
        assert elapsed == span.duration


class TestPipelineMetrics:
    def test_scheduler_and_profiler_counters(self, enabled, tmp_path):
        profile_run(lu, 2, params=dict(n=10), trace_dir=str(tmp_path))
        reg = enabled.registry
        assert reg.get("simmpi_context_switches").value() > 0
        assert reg.get("simmpi_token_grants").value() > 0
        assert reg.get("simmpi_calls_total").total > 0
        assert reg.get("simmpi_rma_ops_total").total > 0
        assert reg.get("profiler_events_written_total").total > 0
        assert reg.get("profiler_bytes_written_total").total > 0
        assert reg.get("profiler_flush_seconds").count() > 0
        assert reg.get("profiler_events_per_second").value() > 0

    def test_per_rank_run_time_gauges(self, enabled, tmp_path):
        profile_run(lu, 3, params=dict(n=10), trace_dir=str(tmp_path))
        gauge = enabled.registry.get("simmpi_rank_run_seconds")
        for rank in range(3):
            assert gauge.value(rank=str(rank)) > 0

    def test_rma_ops_by_kind(self, enabled, tmp_path):
        profile_run(lu, 2, params=dict(n=10), trace_dir=str(tmp_path))
        counter = enabled.registry.get("simmpi_rma_ops_total")
        kinds = {labels["kind"] for labels, _v in counter.samples()}
        assert kinds & {"Put", "Get", "Accumulate"}

    def test_analyzer_metrics(self, enabled, tmp_path):
        run = profile_run(emulate, 2, trace_dir=str(tmp_path),
                          params=dict(buggy=True))
        report = check_traces(run.traces)
        reg = enabled.registry
        assert reg.get("analyzer_events_total").value() == \
            report.stats.events
        assert reg.get("analyzer_findings_total").value(
            severity="error") == len(report.errors)
        assert reg.get("analyzer_phase_seconds").count() == \
            len(MCChecker.PHASES)

    def test_scheduler_timing_off_when_disabled(self):
        assert not obs.is_enabled()
        from repro.simmpi.runtime import World
        world = World(2)
        world.run(lambda mpi: mpi.barrier())
        assert world.scheduler.token_seconds() is None
        world.publish_obs()  # must be a no-op, not an error


class TestCliExports:
    def test_run_check_writes_both_exports(self, tmp_path, capsys):
        metrics = tmp_path / "m.prom"
        trace = tmp_path / "t.json"
        rc = main(["run-check", "emulate", "--ranks", "4",
                   "--trace-dir", str(tmp_path / "traces"),
                   "--metrics-out", str(metrics),
                   "--chrome-trace", str(trace)])
        assert rc == 1  # emulate is buggy
        capsys.readouterr()

        text = metrics.read_text()
        assert "# TYPE simmpi_calls_total counter" in text
        assert "# TYPE profiler_events_written_total counter" in text
        assert "# TYPE analyzer_events_total counter" in text

        doc = json.loads(trace.read_text())
        names = {e["name"] for e in doc["traceEvents"] if e["ph"] == "X"}
        for phase in MCChecker.PHASES:
            assert f"analyzer.{phase}" in names
        assert "profiler.run" in names

    def test_check_metrics_only(self, tmp_path, capsys):
        main(["run", "emulate", "--ranks", "2",
              "--trace-dir", str(tmp_path / "traces")])
        capsys.readouterr()
        metrics = tmp_path / "m.prom"
        rc = main(["check", str(tmp_path / "traces"),
                   "--metrics-out", str(metrics)])
        assert rc == 1
        assert "analyzer_events_total" in metrics.read_text()

    def test_exports_reset_recorder_after_main(self, tmp_path, capsys):
        main(["run", "emulate", "--ranks", "2",
              "--trace-dir", str(tmp_path / "traces"),
              "--metrics-out", str(tmp_path / "m.prom")])
        capsys.readouterr()
        assert not obs.is_enabled()

    def test_no_flags_stays_disabled(self, tmp_path, capsys, monkeypatch):
        monkeypatch.delenv("MCCHECKER_OBS", raising=False)
        main(["run", "emulate", "--ranks", "2",
              "--trace-dir", str(tmp_path / "traces")])
        capsys.readouterr()
        assert not obs.is_enabled()


class TestCliLogLevel:
    def test_quiet_silences_table1(self, capsys):
        assert main(["table1", "--log-level", "quiet"]) == 0
        assert capsys.readouterr().out == ""

    def test_quiet_silences_apps(self, capsys):
        assert main(["apps", "--log-level", "quiet"]) == 0
        assert capsys.readouterr().out == ""

    def test_default_level_prints(self, capsys):
        assert main(["table1"]) == 0
        assert "NONOV" in capsys.readouterr().out

    def test_quiet_check_keeps_exit_code(self, tmp_path, capsys):
        main(["run", "emulate", "--ranks", "2",
              "--trace-dir", str(tmp_path), "--log-level", "quiet"])
        assert capsys.readouterr().out == ""
        rc = main(["check", str(tmp_path), "--log-level", "quiet"])
        assert rc == 1
        assert capsys.readouterr().out == ""

    def test_json_output_bypasses_quiet(self, tmp_path, capsys):
        main(["run", "emulate", "--ranks", "2", "--trace-dir",
              str(tmp_path)])
        capsys.readouterr()
        rc = main(["check", str(tmp_path), "--json",
                   "--log-level", "quiet"])
        assert rc == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["errors"]


class TestCliStats:
    def test_stats_per_rank_and_phase_tables(self, tmp_path, capsys):
        main(["run", "LU", "--ranks", "2", "--param", "n=10",
              "--trace-dir", str(tmp_path)])
        capsys.readouterr()
        assert main(["stats", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "per-rank summary:" in out
        assert "analyzer phases:" in out
        for phase in MCChecker.PHASES:
            assert phase in out
        assert "total" in out

    def test_stats_no_phases_flag(self, tmp_path, capsys):
        main(["run", "LU", "--ranks", "2", "--param", "n=10",
              "--trace-dir", str(tmp_path)])
        capsys.readouterr()
        assert main(["stats", str(tmp_path), "--no-phases"]) == 0
        out = capsys.readouterr().out
        assert "per-rank summary:" in out
        assert "analyzer phases:" not in out
