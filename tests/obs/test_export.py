"""Exporter tests: Prometheus text, Chrome trace_event, JSON-lines."""

import json
import re

from repro.obs.export import (
    chrome_trace, jsonl_lines, prometheus_text, write_chrome_trace,
    write_jsonl, write_metrics,
)
from repro.obs.recorder import Recorder

#: one exposition-format sample line: name, optional labels, value
_SAMPLE_RE = re.compile(
    r'^[a-zA-Z_:][a-zA-Z0-9_:]*'
    r'(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"]*"(,[a-zA-Z_][a-zA-Z0-9_]*="[^"]*")*\})?'
    r' [0-9eE+.\-]+$')


def populated_recorder():
    rec = Recorder()
    rec.count("calls_total", 3, fn="Put", help="MPI calls")
    rec.count("calls_total", 1, fn="Get", help="MPI calls")
    rec.gauge("rank_seconds", 0.25, rank="0", help="per-rank time")
    rec.observe("flush_seconds", 0.002, help="flush latency")
    rec.observe("flush_seconds", 0.2)
    with rec.span("profiler.run", app="lu"):
        with rec.span("analyzer.matching"):
            pass
    return rec


class TestPrometheus:
    def test_every_line_valid_exposition(self):
        text = prometheus_text(populated_recorder().registry)
        assert text.endswith("\n")
        for line in text.rstrip("\n").splitlines():
            if line.startswith("#"):
                assert re.match(r"^# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]* ",
                                line), line
            else:
                assert _SAMPLE_RE.match(line), line

    def test_counter_series(self):
        text = prometheus_text(populated_recorder().registry)
        assert '# TYPE calls_total counter' in text
        assert 'calls_total{fn="Put"} 3' in text
        assert 'calls_total{fn="Get"} 1' in text
        assert '# HELP calls_total MPI calls' in text

    def test_histogram_cumulative_buckets(self):
        text = prometheus_text(populated_recorder().registry)
        assert '# TYPE flush_seconds histogram' in text
        assert 'flush_seconds_bucket{le="+Inf"} 2' in text
        assert 'flush_seconds_count 2' in text
        # cumulative: every bucket value is <= the next
        values = [int(m.group(1)) for m in re.finditer(
            r'flush_seconds_bucket\{le="[^"]*"\} (\d+)', text)]
        assert values == sorted(values)

    def test_label_escaping(self):
        rec = Recorder()
        rec.count("odd_total", 1, path='a"b\\c\nd')
        text = prometheus_text(rec.registry)
        assert 'path="a\\"b\\\\c\\nd"' in text

    def test_empty_registry(self):
        assert prometheus_text(Recorder().registry) == ""

    def test_write_metrics(self, tmp_path):
        out = tmp_path / "m.prom"
        write_metrics(populated_recorder(), str(out))
        assert "calls_total" in out.read_text()


class TestChromeTrace:
    def test_document_shape(self):
        doc = chrome_trace(populated_recorder())
        assert set(doc) == {"traceEvents", "displayTimeUnit"}
        complete = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert {e["name"] for e in complete} == \
            {"profiler.run", "analyzer.matching"}
        for event in complete:
            assert {"name", "cat", "ph", "ts", "dur", "pid", "tid",
                    "args"} <= set(event)
            assert event["ts"] >= 0
            assert event["dur"] >= 0

    def test_metadata_names_process_and_threads(self):
        doc = chrome_trace(populated_recorder(), process_name="mc")
        meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        assert any(e["name"] == "process_name"
                   and e["args"]["name"] == "mc" for e in meta)
        assert any(e["name"] == "thread_name" for e in meta)

    def test_category_from_span_prefix(self):
        doc = chrome_trace(populated_recorder())
        cats = {e["name"]: e["cat"] for e in doc["traceEvents"]
                if e["ph"] == "X"}
        assert cats["profiler.run"] == "profiler"
        assert cats["analyzer.matching"] == "analyzer"

    def test_args_stringified(self):
        doc = chrome_trace(populated_recorder())
        run_event, = [e for e in doc["traceEvents"]
                      if e.get("name") == "profiler.run"]
        assert run_event["args"] == {"app": "lu"}

    def test_write_is_valid_json(self, tmp_path):
        out = tmp_path / "t.json"
        write_chrome_trace(populated_recorder(), str(out))
        doc = json.loads(out.read_text())
        assert doc["traceEvents"]


class TestJsonl:
    def test_one_object_per_line(self):
        lines = list(jsonl_lines(populated_recorder()))
        payloads = [json.loads(line) for line in lines]
        kinds = {p["type"] for p in payloads}
        assert kinds == {"span", "counter", "gauge", "histogram"}

    def test_histogram_line_carries_buckets(self):
        payloads = [json.loads(line)
                    for line in jsonl_lines(populated_recorder())]
        hist, = [p for p in payloads if p["type"] == "histogram"]
        assert hist["count"] == 2
        assert any(b["count"] for b in hist["buckets"])

    def test_write_jsonl(self, tmp_path):
        out = tmp_path / "o.jsonl"
        write_jsonl(populated_recorder(), str(out))
        lines = out.read_text().splitlines()
        assert lines
        for line in lines:
            json.loads(line)
