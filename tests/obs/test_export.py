"""Exporter tests: Prometheus text, Chrome trace_event, JSON-lines."""

import json
import os
import re
from collections import defaultdict

from repro import obs
from repro.obs.export import (
    chrome_trace, jsonl_lines, prometheus_text, write_chrome_trace,
    write_jsonl, write_metrics,
)
from repro.obs.recorder import Recorder

#: one exposition-format sample line: name, optional labels, value
_SAMPLE_RE = re.compile(
    r'^[a-zA-Z_:][a-zA-Z0-9_:]*'
    r'(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"]*"(,[a-zA-Z_][a-zA-Z0-9_]*="[^"]*")*\})?'
    r' [0-9eE+.\-]+$')


def populated_recorder():
    rec = Recorder()
    rec.count("calls_total", 3, fn="Put", help="MPI calls")
    rec.count("calls_total", 1, fn="Get", help="MPI calls")
    rec.gauge("rank_seconds", 0.25, rank="0", help="per-rank time")
    rec.observe("flush_seconds", 0.002, help="flush latency")
    rec.observe("flush_seconds", 0.2)
    with rec.span("profiler.run", app="lu"):
        with rec.span("analyzer.matching"):
            pass
    return rec


# ----------------------------------------------------------------------
# a minimal OpenMetrics-style exposition parser (the round-trip oracle:
# if this can't parse a line, neither can a real scraper)
# ----------------------------------------------------------------------

_SAMPLE_LINE_RE = re.compile(
    r'^([a-zA-Z_:][a-zA-Z0-9_:]*)(?:\{(.*)\})? (\S+)$')


def _unescape(value):
    out, i = [], 0
    while i < len(value):
        if value[i] == "\\" and i + 1 < len(value):
            out.append({"n": "\n", '"': '"', "\\": "\\"}
                       .get(value[i + 1], "\\" + value[i + 1]))
            i += 2
        else:
            out.append(value[i])
            i += 1
    return "".join(out)


def _parse_labels(block):
    labels, i = {}, 0
    while i < len(block):
        eq = block.index("=", i)
        key = block[i:eq]
        assert block[eq + 1] == '"', block
        j, raw = eq + 2, []
        while block[j] != '"':
            if block[j] == "\\":
                raw.append(block[j:j + 2])
                j += 2
            else:
                raw.append(block[j])
                j += 1
        labels[key] = _unescape("".join(raw))
        i = j + 1
        if i < len(block) and block[i] == ",":
            i += 1
    return labels


def parse_exposition(text):
    """``family -> {"help", "type", "samples": {(name, labels...) : value}}``.

    Histogram series (``_bucket``/``_sum``/``_count``) attach to their
    base family.  Raises on any line a scraper couldn't parse."""
    families = {}

    def family_of(name):
        for suffix in ("_bucket", "_sum", "_count"):
            if name.endswith(suffix) and name[:-len(suffix)] in families:
                return name[:-len(suffix)]
        return name

    for line in text.rstrip("\n").splitlines():
        if line.startswith("# HELP ") or line.startswith("# TYPE "):
            kind = line[2:6].strip().lower()
            name, _, value = line[7:].partition(" ")
            fam = families.setdefault(
                name, {"help": None, "type": None, "samples": {}})
            fam[kind] = _unescape(value)
        else:
            match = _SAMPLE_LINE_RE.match(line)
            assert match, f"unparseable sample line: {line!r}"
            name, block, value = match.groups()
            labels = _parse_labels(block) if block else {}
            fam = families[family_of(name)]
            key = (name,) + tuple(sorted(labels.items()))
            fam["samples"][key] = float(value)
    return families


class TestPrometheus:
    def test_every_line_valid_exposition(self):
        text = prometheus_text(populated_recorder().registry)
        assert text.endswith("\n")
        for line in text.rstrip("\n").splitlines():
            if line.startswith("#"):
                assert re.match(
                    r"^# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]*( |$)",
                    line), line
            else:
                assert _SAMPLE_RE.match(line), line

    def test_every_family_has_help_and_type_headers(self):
        rec = populated_recorder()
        rec.count("helpless_total", 2, fn="Put")  # no help text given
        families = parse_exposition(prometheus_text(rec.registry))
        assert set(families) == {"calls_total", "rank_seconds",
                                 "flush_seconds", "helpless_total"}
        for name, family in families.items():
            assert family["type"] is not None, f"{name} missing # TYPE"
            assert f"# HELP {name}" in prometheus_text(rec.registry)
        assert families["calls_total"]["type"] == "counter"
        assert families["rank_seconds"]["type"] == "gauge"
        assert families["flush_seconds"]["type"] == "histogram"

    def test_round_trip_through_parser(self):
        rec = populated_recorder()
        nasty = 'a"b\\c\nd'
        rec.count("odd_total", 5, path=nasty, help="weird\nhelp")
        families = parse_exposition(prometheus_text(rec.registry))
        assert families["calls_total"]["help"] == "MPI calls"
        assert families["calls_total"]["samples"][
            ("calls_total", ("fn", "Put"))] == 3
        assert families["calls_total"]["samples"][
            ("calls_total", ("fn", "Get"))] == 1
        # label values survive escaping byte-for-byte
        assert families["odd_total"]["samples"][
            ("odd_total", ("path", nasty))] == 5
        assert families["odd_total"]["help"] == "weird\nhelp"
        # histogram series attach to the family; +Inf bucket == count
        hist = families["flush_seconds"]["samples"]
        assert hist[("flush_seconds_bucket", ("le", "+Inf"))] == 2
        assert hist[("flush_seconds_count",)] == 2

    def test_counter_series(self):
        text = prometheus_text(populated_recorder().registry)
        assert '# TYPE calls_total counter' in text
        assert 'calls_total{fn="Put"} 3' in text
        assert 'calls_total{fn="Get"} 1' in text
        assert '# HELP calls_total MPI calls' in text

    def test_histogram_cumulative_buckets(self):
        text = prometheus_text(populated_recorder().registry)
        assert '# TYPE flush_seconds histogram' in text
        assert 'flush_seconds_bucket{le="+Inf"} 2' in text
        assert 'flush_seconds_count 2' in text
        # cumulative: every bucket value is <= the next
        values = [int(m.group(1)) for m in re.finditer(
            r'flush_seconds_bucket\{le="[^"]*"\} (\d+)', text)]
        assert values == sorted(values)

    def test_label_escaping(self):
        rec = Recorder()
        rec.count("odd_total", 1, path='a"b\\c\nd')
        text = prometheus_text(rec.registry)
        assert 'path="a\\"b\\\\c\\nd"' in text

    def test_empty_registry(self):
        assert prometheus_text(Recorder().registry) == ""

    def test_write_metrics(self, tmp_path):
        out = tmp_path / "m.prom"
        write_metrics(populated_recorder(), str(out))
        assert "calls_total" in out.read_text()


class TestChromeTrace:
    def test_document_shape(self):
        doc = chrome_trace(populated_recorder())
        assert set(doc) == {"traceEvents", "displayTimeUnit"}
        complete = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert {e["name"] for e in complete} == \
            {"profiler.run", "analyzer.matching"}
        for event in complete:
            assert {"name", "cat", "ph", "ts", "dur", "pid", "tid",
                    "args"} <= set(event)
            assert event["ts"] >= 0
            assert event["dur"] >= 0

    def test_metadata_names_process_and_threads(self):
        doc = chrome_trace(populated_recorder(), process_name="mc")
        meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        assert any(e["name"] == "process_name"
                   and e["args"]["name"] == "mc" for e in meta)
        assert any(e["name"] == "thread_name" for e in meta)

    def test_category_from_span_prefix(self):
        doc = chrome_trace(populated_recorder())
        cats = {e["name"]: e["cat"] for e in doc["traceEvents"]
                if e["ph"] == "X"}
        assert cats["profiler.run"] == "profiler"
        assert cats["analyzer.matching"] == "analyzer"

    def test_args_stringified(self):
        doc = chrome_trace(populated_recorder())
        run_event, = [e for e in doc["traceEvents"]
                      if e.get("name") == "profiler.run"]
        assert run_event["args"] == {"app": "lu"}

    def test_write_is_valid_json(self, tmp_path):
        out = tmp_path / "t.json"
        write_chrome_trace(populated_recorder(), str(out))
        doc = json.loads(out.read_text())
        assert doc["traceEvents"]


class TestChromeTraceMerge:
    """Parallel-run merge correctness: spans absorbed from forked
    workers must land on their own process lanes with sane timestamps."""

    @classmethod
    def parallel_doc(cls):
        if not hasattr(cls, "_doc"):
            from repro.apps.registry import BUG_CASES
            from repro.core.checker import check_traces
            from repro.core.config import CheckConfig
            from repro.profiler.session import profile_run
            case = BUG_CASES[0]
            traces = profile_run(case.app, min(case.nranks, 4),
                                 params=case.params(True)).traces
            rec = obs.configure(enabled=True)
            try:
                check_traces(traces, CheckConfig(jobs=2))
            finally:
                obs.reset()
            cls._doc = chrome_trace(rec)
        return cls._doc

    def test_merged_document_is_valid_json(self):
        doc = self.parallel_doc()
        assert json.loads(json.dumps(doc)) == doc

    def test_worker_pids_distinct_from_parent(self):
        doc = self.parallel_doc()
        pids = {e["pid"] for e in doc["traceEvents"] if e["ph"] == "X"}
        assert os.getpid() in pids, "parent spans missing"
        workers = pids - {os.getpid()}
        assert workers, "no absorbed worker spans in the merged trace"
        meta = {e["pid"]: e["args"]["name"]
                for e in doc["traceEvents"]
                if e["ph"] == "M" and e["name"] == "process_name"}
        assert meta[os.getpid()] == "mc-checker"
        for pid in workers:
            assert meta[pid] == f"mc-checker worker-{pid}"

    def test_timestamps_nonnegative_and_monotonic_per_lane(self):
        doc = self.parallel_doc()
        by_lane = defaultdict(list)
        for event in doc["traceEvents"]:
            if event["ph"] != "X":
                continue
            assert event["ts"] >= 0, event
            assert event["dur"] >= 0, event
            by_lane[(event["pid"], event["tid"])].append(event["ts"])
        for lane, stamps in by_lane.items():
            assert stamps == sorted(stamps), (
                f"lane {lane} timestamps out of order")

    def test_worker_spans_keep_their_attrs(self):
        doc = self.parallel_doc()
        worker_events = [e for e in doc["traceEvents"]
                         if e["ph"] == "X"
                         and e["name"].startswith("analyzer.worker.")]
        assert worker_events
        for event in worker_events:
            assert "pid" in event["args"]
            assert int(event["args"]["pid"]) == event["pid"]


class TestJsonl:
    def test_one_object_per_line(self):
        lines = list(jsonl_lines(populated_recorder()))
        payloads = [json.loads(line) for line in lines]
        kinds = {p["type"] for p in payloads}
        assert kinds == {"span", "counter", "gauge", "histogram"}

    def test_histogram_line_carries_buckets(self):
        payloads = [json.loads(line)
                    for line in jsonl_lines(populated_recorder())]
        hist, = [p for p in payloads if p["type"] == "histogram"]
        assert hist["count"] == 2
        assert any(b["count"] for b in hist["buckets"])

    def test_write_jsonl(self, tmp_path):
        out = tmp_path / "o.jsonl"
        write_jsonl(populated_recorder(), str(out))
        lines = out.read_text().splitlines()
        assert lines
        for line in lines:
            json.loads(line)
