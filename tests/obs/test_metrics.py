"""Metric primitive tests: counters, gauges, histograms, registry."""

import threading

import pytest

from repro.obs.metrics import (
    DEFAULT_BUCKETS, Counter, Gauge, Histogram, MetricsRegistry,
)


class TestCounter:
    def test_inc_and_value(self):
        c = Counter("requests_total")
        c.inc()
        c.inc(4)
        assert c.value() == 5

    def test_labelled_series_independent(self):
        c = Counter("calls_total")
        c.inc(2, fn="Put")
        c.inc(3, fn="Get")
        assert c.value(fn="Put") == 2
        assert c.value(fn="Get") == 3
        assert c.value(fn="Accumulate") == 0
        assert c.total == 5

    def test_label_order_irrelevant(self):
        c = Counter("x")
        c.inc(1, a="1", b="2")
        c.inc(1, b="2", a="1")
        assert c.value(a="1", b="2") == 2

    def test_negative_increment_rejected(self):
        with pytest.raises(ValueError):
            Counter("x").inc(-1)

    def test_samples_sorted(self):
        c = Counter("x")
        c.inc(1, k="b")
        c.inc(1, k="a")
        labels = [lbl for lbl, _v in c.samples()]
        assert labels == [{"k": "a"}, {"k": "b"}]

    def test_concurrent_increments(self):
        c = Counter("x")

        def worker():
            for _ in range(1000):
                c.inc()

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value() == 8000


class TestGauge:
    def test_last_write_wins(self):
        g = Gauge("depth")
        g.set(3)
        g.set(7)
        assert g.value() == 7

    def test_missing_series_is_none(self):
        assert Gauge("depth").value(rank="0") is None

    def test_labelled(self):
        g = Gauge("rank_seconds")
        g.set(0.5, rank="0")
        g.set(0.7, rank="1")
        assert g.value(rank="0") == 0.5
        assert g.value(rank="1") == 0.7


class TestHistogram:
    def test_count_and_sum(self):
        h = Histogram("lat", buckets=(0.1, 1.0, 10.0))
        for v in (0.05, 0.5, 5.0):
            h.observe(v)
        assert h.count() == 3
        assert h.sum() == pytest.approx(5.55)

    def test_overflow_beyond_largest_bucket(self):
        h = Histogram("lat", buckets=(0.1, 1.0))
        h.observe(50.0)
        assert h.count() == 1
        # only the +Inf (implicit) bucket holds it
        (_labels, (bucket_counts, count, _total)), = h.samples()
        assert bucket_counts == [0, 0]
        assert count == 1

    def test_percentile_estimation(self):
        h = Histogram("lat", buckets=(1, 2, 4, 8))
        for v in (0.5, 1.5, 1.6, 3.0):
            h.observe(v)
        assert h.percentile(25) == 1
        assert h.percentile(75) == 2
        assert h.percentile(100) == 4

    def test_percentile_empty_is_none(self):
        assert Histogram("lat").percentile(50) is None

    def test_percentile_out_of_range(self):
        with pytest.raises(ValueError):
            Histogram("lat").percentile(150)

    def test_percentile_merges_label_series(self):
        h = Histogram("lat", buckets=(1, 10))
        h.observe(0.5, rank="0")
        h.observe(5.0, rank="1")
        assert h.count() == 2
        assert h.count(rank="0") == 1
        assert h.percentile(100) == 10
        assert h.percentile(100, rank="0") == 1

    def test_empty_buckets_rejected(self):
        with pytest.raises(ValueError):
            Histogram("lat", buckets=())

    def test_default_buckets_sorted(self):
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)


class TestRegistry:
    def test_get_or_create(self):
        reg = MetricsRegistry()
        a = reg.counter("x")
        b = reg.counter("x")
        assert a is b
        assert len(reg) == 1

    def test_kind_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError):
            reg.gauge("x")

    def test_iteration_sorted_by_name(self):
        reg = MetricsRegistry()
        reg.counter("b")
        reg.gauge("a")
        assert [m.name for m in reg] == ["a", "b"]

    def test_get_missing(self):
        assert MetricsRegistry().get("nope") is None
