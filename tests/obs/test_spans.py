"""Span and recorder tests: timing, nesting, enable/disable selection."""

import threading

from repro import obs
from repro.obs.recorder import NullRecorder, Recorder
from repro.obs.spans import Span, SpanTracker


class TestSpanTiming:
    def test_duration_always_measured(self):
        span = Span("work")  # no tracker: the disabled form
        with span:
            pass
        assert span.duration >= 0
        assert span.start > 0

    def test_null_recorder_spans_time_but_do_not_record(self):
        rec = NullRecorder()
        with rec.span("phase") as sp:
            pass
        assert sp.duration >= 0
        assert len(rec.spans) == 0

    def test_recording_span(self):
        rec = Recorder()
        with rec.span("phase", nranks=4):
            pass
        records = rec.spans.records()
        assert len(records) == 1
        assert records[0].name == "phase"
        assert records[0].attrs == {"nranks": 4}
        assert records[0].duration >= 0


class TestNesting:
    def test_depth_tracks_nesting(self):
        tracker = SpanTracker()
        with Span("outer", tracker=tracker):
            with Span("inner", tracker=tracker):
                pass
        by_name = {r.name: r for r in tracker.records()}
        assert by_name["outer"].depth == 0
        assert by_name["inner"].depth == 1

    def test_depth_resets_between_roots(self):
        tracker = SpanTracker()
        with Span("a", tracker=tracker):
            pass
        with Span("b", tracker=tracker):
            pass
        assert all(r.depth == 0 for r in tracker.records())

    def test_threads_have_independent_stacks(self):
        tracker = SpanTracker()

        def worker(name):
            with Span(name, tracker=tracker):
                pass

        with Span("main-outer", tracker=tracker):
            t = threading.Thread(target=worker, args=("thread-span",))
            t.start()
            t.join()
        by_name = {r.name: r for r in tracker.records()}
        # the other thread's span is a root of its own stack
        assert by_name["thread-span"].depth == 0
        assert by_name["thread-span"].thread != by_name["main-outer"].thread


class TestSpanRecordDetails:
    def test_error_attr_on_exception(self):
        tracker = SpanTracker()
        try:
            with Span("failing", tracker=tracker):
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        record, = tracker.records()
        assert record.attrs["error"] == "RuntimeError"

    def test_set_attr_mid_span(self):
        tracker = SpanTracker()
        with Span("work", tracker=tracker) as sp:
            sp.set_attr("items", 42)
        record, = tracker.records()
        assert record.attrs["items"] == 42

    def test_records_ordered_by_start(self):
        tracker = SpanTracker()
        with Span("first", tracker=tracker):
            pass
        with Span("second", tracker=tracker):
            pass
        assert [r.name for r in tracker.records()] == ["first", "second"]

    def test_by_name_and_to_dict(self):
        tracker = SpanTracker()
        with Span("x", {"k": "v"}, tracker=tracker):
            pass
        record, = tracker.by_name("x")
        payload = record.to_dict()
        assert payload["type"] == "span"
        assert payload["attrs"] == {"k": "v"}
        assert payload["duration"] == record.duration


class TestGlobalSelection:
    def test_default_recorder_disabled(self):
        obs.reset()
        assert not obs.is_enabled()
        assert isinstance(obs.get_recorder(), NullRecorder)
        assert not isinstance(obs.get_recorder(), Recorder)

    def test_configure_enables(self):
        obs.configure(enabled=True)
        assert obs.is_enabled()
        with obs.span("x"):
            pass
        obs.count("hits_total", 3)
        rec = obs.get_recorder()
        assert len(rec.spans) == 1
        assert rec.registry.get("hits_total").value() == 3

    def test_disabled_module_functions_are_noops(self):
        obs.configure(enabled=False)
        with obs.span("x") as sp:
            pass
        obs.count("hits_total")
        obs.gauge("depth", 1)
        obs.observe("lat", 0.1)
        assert sp.duration >= 0
        rec = obs.get_recorder()
        assert len(rec.spans) == 0
        assert len(rec.registry) == 0

    def test_reset_restores_null(self):
        obs.configure(enabled=True)
        obs.reset()
        assert not obs.is_enabled()
