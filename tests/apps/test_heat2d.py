"""heat2d on GlobalArray2D: physics + the read/write phase race."""

import numpy as np
import pytest

from repro.apps.heat2d import heat2d
from repro.core import check_app
from repro.simmpi import run_app


def reference(rows, cols, steps, alpha=0.2):
    field = np.zeros((rows, cols))
    field[1, :] = 100.0
    for _ in range(steps):
        padded = np.vstack([field[:1], field, field[-1:]])
        new = field.copy()
        lap = (padded[:-2, 1:-1] + padded[2:, 1:-1]
               + padded[1:-1, :-2] + padded[1:-1, 2:]
               - 4.0 * padded[1:-1, 1:-1])
        new[:, 1:-1] += alpha * lap
        field = new
    return field


class TestPhysics:
    @pytest.mark.parametrize("nranks", [1, 2, 3])
    def test_matches_serial_reference(self, nranks):
        rows, cols, steps = 9, 6, 3
        results = run_app(heat2d, nranks=nranks,
                          params=dict(rows=rows, cols=cols, steps=steps),
                          delivery="lazy")
        stacked = np.vstack(results)
        assert np.allclose(stacked, reference(rows, cols, steps))

    def test_heat_spreads(self):
        results = run_app(heat2d, nranks=2,
                          params=dict(rows=8, cols=6, steps=4))
        stacked = np.vstack(results)
        assert stacked[2, 2] > 0.0  # diffusion reached row 2 interior


class TestChecker:
    def test_clean(self):
        report = check_app(heat2d, nranks=3,
                           params=dict(rows=9, cols=6, steps=2),
                           delivery="random")
        assert not report.findings, report.format()

    def test_missing_phase_sync_flagged(self):
        report = check_app(heat2d, nranks=3,
                           params=dict(rows=9, cols=6, steps=2,
                                       buggy=True),
                           delivery="random")
        assert report.has_errors
        pairs = [{f.a.kind, f.b.kind} for f in report.findings]
        assert any("put" in p and ("get" in p or "load" in p)
                   for p in pairs)
