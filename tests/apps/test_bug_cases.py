"""Table II effectiveness study as a test suite (experiment E2).

For every evaluated bug case: the buggy variant must be detected with the
documented root-cause operation pair and the error must carry actionable
diagnostics; the fixed variant must be clean (no false positives) across
delivery policies and scheduler seeds.
"""

import pytest

from repro.apps.registry import BUG_CASES, LOCKOPTS_EXCLUSIVE, bug_case
from repro.core import check_app

#: rank counts scaled down from the paper's (64 ranks for lockopts) to
#: keep the suite fast; detection is scale-independent (section VII).
TEST_RANKS = {"emulate": 2, "BT-broadcast": 4, "lockopts": 6,
              "lockopts-exclusive": 6, "ping-pong": 2, "jacobi": 4}

ALL_CASES = list(BUG_CASES) + [LOCKOPTS_EXCLUSIVE]


def _check(case, buggy, **kw):
    kw.setdefault("delivery", "random")
    return check_app(case.app, nranks=TEST_RANKS[case.name],
                     params=case.params(buggy), **kw)


@pytest.mark.parametrize("case", ALL_CASES, ids=lambda c: c.name)
class TestDetection:
    def test_buggy_variant_flagged(self, case):
        report = _check(case, buggy=True)
        findings = report.findings
        assert findings, f"{case.name}: bug not detected"
        principal = [f for f in findings
                     if f.severity == case.expected_severity]
        assert principal, (f"{case.name}: expected a "
                           f"{case.expected_severity}")

    def test_root_cause_pair_reported(self, case):
        report = _check(case, buggy=True)
        pairs = [{f.a.kind, f.b.kind} for f in report.findings]
        assert any(pair <= case.root_cause for pair in pairs), \
            f"{case.name}: no finding among {case.root_cause}; got {pairs}"

    def test_error_location_class(self, case):
        report = _check(case, buggy=True)
        kinds = {f.kind for f in report.findings}
        expected = ("intra_epoch" if case.error_location == "within an epoch"
                    else "cross_process")
        assert expected in kinds

    def test_diagnostics_have_locations(self, case):
        report = _check(case, buggy=True)
        f = report.findings[0]
        for side in (f.a, f.b):
            assert side.loc.lineno > 0
            assert side.loc.filename.endswith(".py")

    def test_fixed_variant_clean(self, case):
        report = _check(case, buggy=False)
        assert not report.findings, (
            f"{case.name} fixed variant flagged: "
            + "; ".join(x.format().splitlines()[0]
                        for x in report.findings))


class TestAcrossPolicies:
    """Detection is schedule-independent: MC-Checker reasons about what the
    memory model permits, not about one observed interleaving."""

    @pytest.mark.parametrize("delivery", ["eager", "lazy", "random"])
    def test_emulate_detected_under_all_deliveries(self, delivery):
        case = bug_case("emulate")
        report = _check(case, buggy=True, delivery=delivery)
        assert report.has_errors

    @pytest.mark.parametrize("seed", range(3))
    def test_jacobi_detected_under_random_schedules(self, seed):
        case = bug_case("jacobi")
        report = _check(case, buggy=True, sched_policy="random", seed=seed)
        assert report.has_errors

    @pytest.mark.parametrize("seed", range(3))
    def test_fixed_jacobi_clean_under_random_schedules(self, seed):
        case = bug_case("jacobi")
        report = _check(case, buggy=False, sched_policy="random", seed=seed)
        assert not report.findings


class TestScaleIndependence:
    """Table II's observation: detection works at 2 ranks and at larger
    scales alike (rule-based, not statistical)."""

    @pytest.mark.parametrize("nranks", [2, 4, 8])
    def test_pingpong_any_scale(self, nranks):
        case = bug_case("ping-pong")
        report = check_app(case.app, nranks=nranks,
                           params=case.params(True), delivery="random")
        assert report.has_errors

    @pytest.mark.parametrize("nranks", [4, 8, 16])
    def test_lockopts_any_scale(self, nranks):
        case = bug_case("lockopts")
        report = check_app(case.app, nranks=nranks,
                           params=case.params(True), delivery="random")
        assert report.has_errors


class TestSymptoms:
    """The simulator manifests the documented failure symptoms."""

    def test_emulate_stale_read_under_lazy(self):
        """Each rank reads back the value it just wrote through the DSM;
        under lazy delivery the buggy read observes the pre-Get buffer
        content instead."""
        case = bug_case("emulate")
        from repro.simmpi import run_app

        def expected(rank, rounds=4):
            return [float(100 * rank + i) for i in range(rounds)]

        eager = run_app(case.app, nranks=2, params=case.params(True),
                        delivery="eager")
        assert [eager[r] for r in range(2)] == [expected(0), expected(1)]

        lazy = run_app(case.app, nranks=2, params=case.params(True),
                       delivery="lazy")
        assert lazy[0] != expected(0)  # stale values observed

    def test_bt_broadcast_hangs_under_lazy(self):
        case = bug_case("BT-broadcast")
        from repro.simmpi import run_app
        results = run_app(case.app, nranks=4, params=case.params(True),
                          delivery="lazy")
        assert any(hung for _ok, hung in results), \
            "the while loop should spin to its bound under lazy delivery"

    def test_bt_broadcast_fixed_never_hangs(self):
        case = bug_case("BT-broadcast")
        from repro.simmpi import run_app
        for delivery in ("eager", "lazy", "random"):
            results = run_app(case.app, nranks=4,
                              params=case.params(False), delivery=delivery)
            assert all(ok and not hung for ok, hung in results)

    def test_pingpong_corruption_under_lazy(self):
        case = bug_case("ping-pong")
        from repro.simmpi import run_app
        results = run_app(case.app, nranks=2,
                          params=dict(case.params(True), verify=True),
                          delivery="lazy")
        assert any(corrupt > 0 for corrupt, _last in results[:2])

    def test_pingpong_fixed_never_corrupts(self):
        case = bug_case("ping-pong")
        from repro.simmpi import run_app
        for delivery in ("eager", "lazy"):
            results = run_app(case.app, nranks=2,
                              params=dict(case.params(False), verify=True),
                              delivery=delivery)
            assert all(corrupt == 0 for corrupt, _last in results[:2])

    def test_jacobi_wrong_answers_under_lazy(self):
        import numpy as np
        case = bug_case("jacobi")
        from repro.simmpi import run_app
        # enough iterations for the boundary to diffuse across ranks, so
        # the stale-ghost lag becomes numerically visible
        params = dict(interior=4, iterations=8)
        good = run_app(case.app, nranks=4,
                       params=dict(case.params(False), **params),
                       delivery="lazy")
        bad = run_app(case.app, nranks=4,
                      params=dict(case.params(True), **params),
                      delivery="lazy")
        assert np.abs(np.array(good) - np.array(bad)).max() > 0
