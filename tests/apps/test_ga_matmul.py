"""GA matmul app tests: numerics + the missing-GA_Sync defect."""

import pytest

from repro.apps.ga_matmul import ga_matmul
from repro.core import check_app
from repro.simmpi import run_app


class TestNumerics:
    @pytest.mark.parametrize("nranks", [1, 2, 4])
    def test_matches_numpy(self, nranks):
        results = run_app(ga_matmul, nranks=nranks, params=dict(n=8),
                          delivery="random", seed=1)
        assert max(results) < 1e-12

    def test_uneven_distribution(self):
        results = run_app(ga_matmul, nranks=3, params=dict(n=7),
                          delivery="lazy")
        assert max(results) < 1e-12


class TestChecker:
    def test_clean(self):
        report = check_app(ga_matmul, nranks=3,
                           params=dict(n=6, verify=False),
                           delivery="random")
        assert not report.findings, report.format()

    def test_missing_sync_flagged(self):
        report = check_app(ga_matmul, nranks=3,
                           params=dict(n=6, buggy=True, verify=False),
                           delivery="random")
        assert report.has_errors
        pairs = [{f.a.kind, f.b.kind} for f in report.errors]
        assert any(pair == {"store", "get"} for pair in pairs)

    def test_missing_sync_corrupts_under_lazy_reads(self):
        """Without the sync, remote Gets can fetch pre-initialization
        zeros: the product is wrong on some schedule."""
        outcomes = set()
        for seed in range(6):
            results = run_app(ga_matmul, nranks=3,
                              params=dict(n=6, buggy=True),
                              sched_policy="random", seed=seed)
            outcomes.add(max(results) < 1e-12)
        # at least one schedule must expose the corruption
        assert False in outcomes
