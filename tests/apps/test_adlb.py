"""The ADLB stack-buffer anecdote (section II-B) end to end."""

import pytest

from repro.apps.adlb import adlb, expected_queue
from repro.core import check_app
from repro.simmpi import run_app


class TestLatentBugBehaviour:
    def test_works_for_years_under_eager_delivery(self):
        """On 'most platforms' small payloads are copied eagerly: the bug
        stays latent and the queue is correct."""
        results = run_app(adlb, nranks=3, params=dict(buggy=True),
                          delivery="eager")
        assert results[0] == expected_queue(3)

    def test_bites_on_deferred_transmission(self):
        """The Blue Gene/Q scenario: transfers deferred to the fence read
        the overwritten stack frame."""
        results = run_app(adlb, nranks=3, params=dict(buggy=True),
                          delivery="lazy")
        assert results[0] != expected_queue(3)

    def test_fixed_correct_under_any_delivery(self):
        for delivery in ("eager", "lazy", "random"):
            results = run_app(adlb, nranks=3, params=dict(buggy=False),
                              delivery=delivery)
            assert results[0] == expected_queue(3), delivery


class TestDetection:
    @pytest.mark.parametrize("delivery", ["eager", "lazy"])
    def test_flagged_even_when_latent(self, delivery):
        """MC-Checker flags the defect regardless of whether this run's
        delivery timing made it bite — the point of the tool."""
        report = check_app(adlb, nranks=3, params=dict(buggy=True),
                           delivery=delivery)
        assert report.has_errors
        # root cause: the Put's origin (stack) overwritten within the epoch
        pairs = [{f.a.kind, f.b.kind} for f in report.errors]
        assert any(pair <= {"put", "store"} for pair in pairs)

    def test_diagnostics_name_the_stack_buffer(self):
        report = check_app(adlb, nranks=3, params=dict(buggy=True))
        vars_named = {f.a.var for f in report.errors} | \
            {f.b.var for f in report.errors}
        assert "stack" in vars_named

    def test_fixed_variant_clean(self):
        report = check_app(adlb, nranks=3, params=dict(buggy=False),
                           delivery="random")
        assert not report.findings
