"""Registry-wide invariants over every bundled bug case.

* Fixed variants are consistency-clean under every delivery policy and
  several schedules (no false positives anywhere in the corpus).
* Buggy variants are flagged under every delivery policy (detection does
  not depend on the race manifesting).
* Fixed variants compute delivery-independent results (behavioural
  correctness of the repairs, not just checker silence).
"""

import numpy as np
import pytest

from repro.apps.registry import BUG_CASES, EXTRA_CASES
from repro.core import check_app
from repro.simmpi import run_app

ALL_CASES = list(BUG_CASES) + list(EXTRA_CASES)
RANKS_CAP = 4


def _ranks(case):
    return min(case.nranks, RANKS_CAP)


@pytest.mark.parametrize("case", ALL_CASES, ids=lambda c: c.name)
@pytest.mark.parametrize("delivery", ["eager", "lazy"])
class TestCorpusInvariants:
    def test_fixed_clean(self, case, delivery):
        report = check_app(case.app, nranks=_ranks(case),
                           params=case.params(False), delivery=delivery)
        assert not report.findings, (
            f"{case.name} fixed flagged under {delivery}:\n"
            + report.format())

    def test_buggy_flagged(self, case, delivery):
        report = check_app(case.app, nranks=_ranks(case),
                           params=case.params(True), delivery=delivery)
        assert report.findings, \
            f"{case.name} buggy not flagged under {delivery}"


@pytest.mark.parametrize("case", ALL_CASES, ids=lambda c: c.name)
def test_fixed_results_delivery_independent(case):
    """A correct program's observable results cannot depend on when the
    MPI library moves the bytes."""
    outputs = []
    for delivery in ("eager", "lazy"):
        results = run_app(case.app, nranks=_ranks(case),
                          params=case.params(False), delivery=delivery)
        outputs.append(results)

    def comparable(value):
        if value is None or isinstance(value, (bool, str)):
            return value
        try:
            return np.asarray(value, dtype=float).tolist()
        except (TypeError, ValueError):
            return str(value)

    left = [comparable(v) for v in outputs[0]]
    right = [comparable(v) for v in outputs[1]]
    assert left == right, f"{case.name}: fixed variant is schedule-dependent"
