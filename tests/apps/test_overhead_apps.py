"""Overhead-app tests: correctness, race-freedom, and event-mix shape."""

import numpy as np
import pytest

from repro.apps.boltzmann import boltzmann
from repro.apps.lennard_jones import lennard_jones
from repro.apps.lu import lu, _block_bounds, _owner_of
from repro.apps.scf import scf
from repro.apps.skampi import skampi
from repro.core import check_app
from repro.profiler.session import profile_run
from repro.simmpi import run_app

SMALL = {
    "lu": (lu, dict(n=16)),
    "lj": (lennard_jones, dict(particles_per_rank=2, steps=2)),
    "scf": (scf, dict(basis_per_rank=3, iterations=2)),
    "boltzmann": (boltzmann, dict(cells_per_rank=6, steps=2)),
    "skampi": (skampi, dict(sizes=(4, 8), repeats=2)),
}


@pytest.mark.parametrize("name", sorted(SMALL), ids=sorted(SMALL))
class TestRaceFree:
    def test_no_findings(self, name):
        app, params = SMALL[name]
        report = check_app(app, nranks=4, params=params, delivery="random")
        assert not report.findings, report.format()

    @pytest.mark.parametrize("delivery", ["eager", "lazy"])
    def test_deterministic_across_delivery(self, name, delivery):
        """Race-free programs must compute the same result whether data
        moves at issue time or at epoch close."""
        app, params = SMALL[name]
        if name == "skampi":
            pytest.skip("returns timings, not deterministic values")
        a = run_app(app, nranks=4, params=params, delivery="eager")
        b = run_app(app, nranks=4, params=params, delivery=delivery)
        for x, y in zip(a, b):
            assert np.allclose(np.asarray(x, dtype=float),
                               np.asarray(y, dtype=float))


class TestLU:
    def test_factorization_correct(self):
        for nranks in (1, 2, 4):
            results = run_app(lu, nranks=nranks,
                              params=dict(n=20, verify=True))
            assert max(results) < 1e-9

    def test_block_bounds_partition(self):
        n, size = 23, 5
        covered = []
        for rank in range(size):
            lo, hi = _block_bounds(n, size, rank)
            covered.extend(range(lo, hi))
        assert covered == list(range(n))

    def test_owner_consistent_with_bounds(self):
        n, size = 17, 4
        for row in range(n):
            owner = _owner_of(n, size, row)
            lo, hi = _block_bounds(n, size, owner)
            assert lo <= row < hi

    def test_strong_scaling_event_profile(self):
        """The Figure 9/10 mechanism: per-rank load/store events shrink
        with rank count, per-rank MPI events stay roughly constant."""
        mem_per_rank, call_per_rank = {}, {}
        for nranks in (2, 4):
            run = profile_run(lu, nranks, params=dict(n=24))
            counts = run.traces.event_counts()
            mem_per_rank[nranks] = counts["mem"] / nranks
            call_per_rank[nranks] = counts["call"] / nranks
        assert mem_per_rank[4] < mem_per_rank[2]
        assert call_per_rank[4] == pytest.approx(call_per_rank[2],
                                                 rel=0.25)


class TestBoltzmann:
    def test_mass_conserved(self):
        before_total = None
        results = run_app(boltzmann, nranks=4,
                          params=dict(cells_per_rank=8, steps=6))
        total = sum(results)
        # initial mass: sum over cells of rho (1.0 + bump)
        results0 = run_app(boltzmann, nranks=4,
                           params=dict(cells_per_rank=8, steps=0))
        assert total == pytest.approx(sum(results0), rel=1e-6)


class TestSKaMPI:
    def test_rows_cover_sweep(self):
        rows = run_app(skampi, nranks=4,
                       params=dict(sizes=(4, 8), repeats=1))[0]
        keys = {(r["op"], r["mode"], r["size"]) for r in rows}
        assert len(keys) == 3 * 2 * 2
        assert all(r["seconds"] >= 0 for r in rows)

    def test_odd_world_size(self):
        rows = run_app(skampi, nranks=3,
                       params=dict(sizes=(4,), repeats=1))[2]
        assert rows  # the unpaired rank participates in collectives only


class TestSCF:
    def test_converges_monotonically_runs(self):
        energy, iterations = run_app(
            scf, nranks=4, params=dict(basis_per_rank=3, iterations=5))[0]
        assert iterations >= 1
        assert np.isfinite(energy)


class TestLJ:
    def test_checksum_finite_and_shared(self):
        results = run_app(lennard_jones, nranks=3,
                          params=dict(particles_per_rank=2, steps=2))
        assert all(np.isfinite(v) for v in results)
