"""PSCW wavefront sweep: semantics + detection of the exposure-epoch race."""

import pytest

from repro.apps.sweep_pscw import expected_checksum, sweep_pscw
from repro.core import check_app
from repro.simmpi import run_app


class TestSemantics:
    @pytest.mark.parametrize("delivery", ["eager", "lazy", "random"])
    def test_fixed_matches_reference(self, delivery):
        results = run_app(sweep_pscw, nranks=4, params=dict(buggy=False),
                          delivery=delivery)
        expected = expected_checksum(4)
        assert results == pytest.approx(expected)

    def test_buggy_wrong_under_lazy(self):
        results = run_app(sweep_pscw, nranks=4, params=dict(buggy=True),
                          delivery="lazy")
        assert results != pytest.approx(expected_checksum(4))

    def test_two_ranks_minimal(self):
        results = run_app(sweep_pscw, nranks=2, params=dict(buggy=False),
                          delivery="lazy")
        assert results == pytest.approx(expected_checksum(2))


class TestDetection:
    def test_exposure_epoch_read_flagged(self):
        report = check_app(sweep_pscw, nranks=3, params=dict(buggy=True),
                           delivery="random")
        assert report.has_errors
        pairs = [{f.a.kind, f.b.kind} for f in report.errors]
        assert any(pair == {"load", "put"} for pair in pairs)

    def test_fixed_variant_clean(self):
        report = check_app(sweep_pscw, nranks=3, params=dict(buggy=False),
                           delivery="random")
        assert not report.findings, report.format()

    def test_fixed_clean_across_seeds(self):
        """post->start and complete->wait edges must order every pair the
        sweep generates, under any schedule."""
        for seed in range(3):
            report = check_app(sweep_pscw, nranks=4,
                               params=dict(buggy=False),
                               sched_policy="random", seed=seed)
            assert not report.findings, report.format()

    def test_repeated_waves_each_flagged_once(self):
        report = check_app(sweep_pscw, nranks=3,
                           params=dict(buggy=True, waves=4),
                           delivery="random")
        load_put = [f for f in report.errors
                    if {f.a.kind, f.b.kind} == {"load", "put"}]
        assert load_put
        assert load_put[0].occurrences >= 2  # deduped across waves
