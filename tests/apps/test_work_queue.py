"""Work-queue claiming: atomicity of each mode + checker verdicts."""

import pytest

from repro.apps.work_queue import FREE, TAKEN, work_queue
from repro.core import check_app
from repro.simmpi import run_app


def all_claims(results):
    return sorted(task for claimed, _table in results for task in claimed)


class TestAtomicModes:
    @pytest.mark.parametrize("mode", ["cas", "fetch_add"])
    @pytest.mark.parametrize("seed", range(4))
    def test_every_task_claimed_exactly_once(self, mode, seed):
        results = run_app(work_queue, nranks=4,
                          params=dict(tasks=6, mode=mode),
                          sched_policy="random", seed=seed,
                          delivery="random")
        assert all_claims(results) == list(range(6))

    def test_cas_marks_ownership_table(self):
        results = run_app(work_queue, nranks=3,
                          params=dict(tasks=5, mode="cas"))
        assert results[0][1] == [TAKEN] * 5

    @pytest.mark.parametrize("mode", ["cas", "fetch_add"])
    def test_checker_clean(self, mode):
        report = check_app(work_queue, nranks=3,
                           params=dict(tasks=4, mode=mode),
                           delivery="random")
        assert not report.findings, report.format()


class TestRacyMode:
    def test_double_claims_occur(self):
        duplicated = False
        for seed in range(6):
            results = run_app(work_queue, nranks=4,
                              params=dict(tasks=4, mode="racy"),
                              sched_policy="random", seed=seed,
                              delivery="random")
            claims = all_claims(results)
            if len(claims) != len(set(claims)):
                duplicated = True
                break
        assert duplicated, "some schedule must double-claim"

    def test_checker_flags_the_race(self):
        report = check_app(work_queue, nranks=3,
                           params=dict(tasks=3, mode="racy"),
                           delivery="random")
        assert report.has_errors
        pairs = [{f.a.kind, f.b.kind} for f in report.errors]
        assert any("put" in p for p in pairs)

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            run_app(work_queue, nranks=2, params=dict(mode="hope"))
