"""End-to-end fuzz harness: recall/precision scoring + differential
arms over generated programs."""

import pytest

from repro.core.checker import check_traces
from repro.core.config import CheckConfig
from repro.gen import BUG_PATTERNS, GenConfig, generate_program, score_report
from repro.gen.fuzz import (
    canonical_report, differential_reports, fuzz_corpus, profile_program,
    run_case,
)


@pytest.mark.parametrize("pattern", BUG_PATTERNS)
def test_each_pattern_detected_exactly(tmp_path, pattern):
    generated = generate_program(
        GenConfig(seed=1, nranks=5, bugs=(pattern,)))
    profiled = profile_program(generated, trace_dir=str(tmp_path))
    report = check_traces(profiled.traces, CheckConfig())
    score = score_report(report, generated.manifest)
    assert score.recall == 1.0, f"{pattern}: missed {score.missed}"
    assert score.precision == 1.0, (
        f"{pattern}: unmatched findings "
        f"{[report.findings[i].to_dict() for i in score.unmatched_findings]}")
    (bug,) = generated.manifest.bugs
    matched = [report.findings[i] for i in score.matched[bug.bug_id]]
    assert any(f.kind == bug.kind and f.rule == bug.rule and
               f.severity == bug.severity for f in matched), (
        f"{pattern}: no finding with the manifest's expected shape "
        f"({bug.kind}/{bug.rule}/{bug.severity})")


def test_score_accepts_finding_dicts():
    generated = generate_program(GenConfig(seed=1, bugs=("op_pair",)))
    (bug,) = generated.manifest.bugs
    fake = {"kind": bug.kind, "a": {"var": bug.var}, "b": {"var": "win"}}
    score = score_report([fake], generated.manifest)
    assert score.recall == 1.0 and score.precision == 1.0
    noise = {"kind": bug.kind, "a": {"var": "win"}, "b": {"var": "win"}}
    score = score_report([noise], generated.manifest)
    assert score.recall == 0.0 and score.precision == 0.0
    assert score.missed == (0,)


def test_run_case_full_matrix_no_mismatches():
    case = run_case(GenConfig(seed=3, nranks=5, rounds=3,
                              bugs=("any",) * 2))
    assert case.ok, case.to_dict()
    assert case.recall == 1.0 and case.precision == 1.0
    # every arm of the execution matrix was actually compared
    assert set(case.arms) == {
        "sweep/columnar", "sweep/object",
        "pairwise/columnar", "pairwise/object",
        "incremental-cold/columnar", "incremental-cold/object",
        "incremental-warm/columnar", "incremental-warm/object",
        "format-binary/columnar",
    }
    assert case.mismatched_arms == ()


def test_differential_reports_identical_across_matrix(tmp_path):
    generated = generate_program(
        GenConfig(seed=5, nranks=4, bugs=("target_race",)))
    profiled = profile_program(generated, trace_dir=str(tmp_path))
    reports = differential_reports(profiled.traces)
    assert len(set(reports.values())) == 1, sorted(reports)


def test_fuzz_corpus_aggregates():
    report = fuzz_corpus(GenConfig(nranks=4, bugs=("any",)),
                         seeds=range(3), differential=False)
    assert len(report.cases) == 3
    assert [c.seed for c in report.cases] == [0, 1, 2]
    assert report.ok and report.recall == 1.0
    assert "recall=1.000" in report.format()


def test_canonical_report_strips_timings(tmp_path):
    generated = generate_program(GenConfig(seed=2, nranks=4))
    profiled = profile_program(generated, trace_dir=str(tmp_path))
    report = check_traces(profiled.traces, CheckConfig())
    text = canonical_report(report)
    assert "phase_seconds" not in text
