"""CLI verbs: mc-checker generate / fuzz."""

import json

from repro.cli import main
from repro.gen import GenConfig, Manifest, Program, generate_program


class TestGenerate:
    def test_prints_summary(self, capsys):
        assert main(["generate", "--seed", "7", "--bug", "any"]) == 0
        out = capsys.readouterr().out
        assert "1 injected bug(s)" in out

    def test_writes_program_and_manifest(self, tmp_path, capsys):
        out_dir = tmp_path / "p"
        assert main(["generate", "--seed", "7", "--ranks", "5",
                     "--bug", "op_pair", "--bug", "target_race",
                     "--out", str(out_dir)]) == 0
        program = Program.load(str(out_dir / "program.json"))
        manifest = Manifest.load(str(out_dir / "manifest.json"))
        assert program.nranks == 5
        assert [b.pattern for b in manifest.bugs] == \
            ["op_pair", "target_race"]
        # the CLI run is byte-identical to the library call
        expected = generate_program(GenConfig(
            seed=7, nranks=5, bugs=("op_pair", "target_race")))
        assert program.canonical_json() == \
            expected.program.canonical_json()

    def test_json_output(self, capsys):
        assert main(["generate", "--seed", "7", "--bug", "get_local",
                     "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["bugs"][0]["pattern"] == "get_local"

    def test_rejects_bad_flags(self):
        try:
            main(["generate", "--ranks", "1"])
        except SystemExit as exc:
            assert "nranks" in str(exc)
        else:  # pragma: no cover
            raise AssertionError("expected SystemExit")


class TestFuzz:
    def test_corpus_green(self, capsys):
        assert main(["fuzz", "--seeds", "2", "--bug", "any",
                     "--no-differential"]) == 0
        out = capsys.readouterr().out
        assert "recall=1.000" in out

    def test_json_report(self, capsys):
        assert main(["fuzz", "--seeds", "1", "--bug", "op_pair",
                     "--no-differential", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
        assert payload["recall"] == 1.0
        assert len(payload["cases"]) == 1

    def test_differential_smoke(self, capsys):
        assert main(["fuzz", "--seeds", "1", "--seed", "3",
                     "--bug", "any", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        (case,) = payload["cases"]
        assert case["seed"] == 3
        assert case["mismatched_arms"] == []
        assert len(case["arms"]) == 9
