"""Regression pin: provenance spans are invariant to how the trace was
encoded and which control plane decoded it.

A finding's provenance (``spans`` = ``[rank, start_seq, end_seq]`` trace
references, detection pattern, enclosing epoch, hb edge) must describe
the *program*, not the run that analyzed it.  Profiling the same
generated program in text and binary trace formats and analyzing each
under both the columnar and the object control plane must produce
byte-identical canonical reports — provenance included.  A drift here
would break manifest scoring and the run-ledger's cross-run comparisons.
"""

import json

import pytest

from repro.core.calltable import CONTROL_PLANE_ENV
from repro.core.checker import check_traces
from repro.core.config import CheckConfig
from repro.gen import GenConfig, generate_program
from repro.gen.fuzz import canonical_report, profile_program

#: one program exercising several finding shapes at once
_CFG = GenConfig(seed=13, nranks=5, rounds=4,
                 bugs=("op_pair", "conflicting_puts", "target_race"))


@pytest.fixture()
def pinned_plane(monkeypatch):
    def pin(name):
        monkeypatch.setenv(CONTROL_PLANE_ENV, name)
    return pin


def _reports(tmp_path, pinned_plane):
    generated = generate_program(_CFG)
    out = {}
    for trace_format in ("text", "binary"):
        trace_dir = tmp_path / trace_format
        profiled = profile_program(generated, trace_dir=str(trace_dir),
                                   trace_format=trace_format)
        for plane in ("columnar", "object"):
            pinned_plane(plane)
            report = check_traces(profiled.traces, CheckConfig())
            out[f"{trace_format}/{plane}"] = report
    return out


def test_reports_byte_identical_across_formats_and_planes(
        tmp_path, pinned_plane):
    reports = _reports(tmp_path, pinned_plane)
    canon = {arm: canonical_report(r) for arm, r in reports.items()}
    baseline = canon["text/columnar"]
    for arm, text in canon.items():
        assert text == baseline, f"report drift on arm {arm}"


def test_provenance_spans_pinned(tmp_path, pinned_plane):
    reports = _reports(tmp_path, pinned_plane)
    baseline = None
    for arm, report in sorted(reports.items()):
        findings = [f.to_dict() for f in report.findings]
        assert findings, "expected findings from the injected bugs"
        prov = [(f["provenance"].get("pattern"),
                 tuple(sorted((side, tuple(span)) for side, span in
                              f["provenance"].get("spans", {}).items())),
                 f["provenance"].get("epoch"),
                 f["a"]["seq"], f["b"]["seq"])
                for f in findings]
        for entry in prov:
            assert entry[1], "finding carries no influence spans"
            # spans must be real [rank, start_seq, end_seq] references
            for _side, span in entry[1]:
                assert len(span) == 3
                rank, start_seq, end_seq = span
                assert 0 <= rank < _CFG.nranks
                assert 0 <= start_seq <= end_seq
        if baseline is None:
            baseline = (arm, prov)
        else:
            assert prov == baseline[1], (
                f"provenance drift between {baseline[0]} and {arm}")


def test_provenance_survives_json_roundtrip(tmp_path, pinned_plane):
    pinned_plane("columnar")
    generated = generate_program(_CFG)
    profiled = profile_program(generated, trace_dir=str(tmp_path))
    report = check_traces(profiled.traces, CheckConfig())
    payload = json.loads(json.dumps(report.to_dict()))
    for finding in payload["errors"] + payload["warnings"]:
        assert "provenance" in finding
