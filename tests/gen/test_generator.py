"""Generator determinism, persistence, constraints, and manifests."""

import json

import pytest

from repro.gen import (
    BUG_PATTERNS, GenConfig, GenerationError, Manifest, Program,
    generate_program,
)
from repro.gen.manifest import PAPER_CLASSES


def test_same_seed_byte_identical():
    cfg = GenConfig(seed=11, nranks=6, rounds=4, bugs=("any",) * 3)
    first, second = generate_program(cfg), generate_program(cfg)
    assert first.program.canonical_json() == second.program.canonical_json()
    assert first.manifest.canonical_json() == \
        second.manifest.canonical_json()


def test_different_seeds_differ():
    cfg = GenConfig(seed=0, nranks=6, rounds=4, bugs=("any",))
    other = cfg.replace(seed=1)
    assert generate_program(cfg).program.canonical_json() != \
        generate_program(other).program.canonical_json()


def test_manifest_records_requested_bugs():
    cfg = GenConfig(seed=2, bugs=("get_local", "put_origin", "op_pair"))
    manifest = generate_program(cfg).manifest
    assert [b.pattern for b in manifest.bugs] == \
        ["get_local", "put_origin", "op_pair"]
    assert manifest.nranks == cfg.nranks
    for bug in manifest.bugs:
        assert bug.var == f"bug{bug.bug_id}_org"
        assert bug.paper_class == PAPER_CLASSES[bug.pattern]


def test_save_load_roundtrip(tmp_path):
    generated = generate_program(
        GenConfig(seed=4, bugs=("conflicting_puts",), nranks=5))
    generated.save(str(tmp_path))
    program = Program.load(str(tmp_path / "program.json"))
    manifest = Manifest.load(str(tmp_path / "manifest.json"))
    assert program.canonical_json() == generated.program.canonical_json()
    assert manifest.canonical_json() == generated.manifest.canonical_json()


def test_generated_program_validates():
    for seed in range(5):
        generated = generate_program(
            GenConfig(seed=seed, nranks=5, rounds=4, bugs=("any",) * 2))
        generated.program.validate()  # raises on inconsistency


def test_conflicting_puts_needs_three_ranks():
    with pytest.raises(GenerationError):
        generate_program(GenConfig(nranks=2, bugs=("conflicting_puts",)))


def test_conflicting_puts_impossible_under_pscw_only():
    with pytest.raises(GenerationError):
        generate_program(GenConfig(
            nranks=5, bugs=("conflicting_puts",),
            epoch_weights=(("pscw", 1.0),)))


def test_every_pattern_placeable_in_every_epoch_kind():
    # conflicting_puts x pscw is unsatisfiable by design (one fixed
    # origin->target ring per PSCW epoch); every other combination must
    # place
    for kind in ("fence", "lock", "lockall", "pscw"):
        for pattern in BUG_PATTERNS:
            if (pattern, kind) == ("conflicting_puts", "pscw"):
                continue
            generated = generate_program(GenConfig(
                seed=0, nranks=5, bugs=(pattern,),
                epoch_weights=((kind, 1.0),)))
            (bug,) = generated.manifest.bugs
            assert bug.pattern == pattern
            assert bug.epoch_kind == kind


def test_manifest_span_matches_bug_slot():
    generated = generate_program(
        GenConfig(seed=6, nranks=4, bugs=("conflicting_puts",)))
    (bug,) = generated.manifest.bugs
    assert bug.span == generated.program.bug_slot_bytes(0)
    assert bug.span[0] < bug.span[1]


def test_manifest_json_is_loadable_dict():
    manifest = generate_program(
        GenConfig(seed=7, bugs=("target_race",))).manifest
    payload = json.loads(manifest.canonical_json())
    assert Manifest.from_dict(payload).canonical_json() == \
        manifest.canonical_json()
