"""The redesigned ``repro.api`` facade: generate / fuzz / score."""

import warnings

import pytest

import repro
from repro import api
from repro.gen import GenConfig, Manifest, replay
from repro.gen.config import _reset_legacy_warning
from repro.gen.fuzz import FuzzReport


def test_root_reexports():
    assert repro.GenConfig is GenConfig
    assert repro.generate is api.generate
    assert repro.fuzz is api.fuzz
    assert repro.score is api.score
    for name in ("GenConfig", "generate", "fuzz", "score"):
        assert name in repro.__all__


def test_generate_with_config_and_overrides():
    generated = api.generate(GenConfig(seed=4), nranks=6,
                             bugs=("op_pair",))
    assert generated.config.nranks == 6
    assert [b.pattern for b in generated.manifest.bugs] == ["op_pair"]


def test_generate_saves(tmp_path):
    out = tmp_path / "corpus" / "p0"
    api.generate(GenConfig(seed=4, bugs=("any",)), out=str(out))
    assert (out / "program.json").exists()
    assert (out / "manifest.json").exists()


def test_generate_legacy_nbugs_warns_once():
    _reset_legacy_warning()
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        generated = api.generate(seed=4, nbugs=2)
        api.generate(seed=4, nbugs=1)
    assert len(generated.manifest.bugs) == 2
    deps = [w for w in caught
            if issubclass(w.category, DeprecationWarning)]
    assert len(deps) == 1


def test_generate_composes_with_run_check():
    generated = api.generate(GenConfig(seed=4, nranks=4,
                                       bugs=("get_local",)))
    report = api.run_check(replay, generated.config.nranks,
                           params={"spec": generated.program},
                           scope="all")
    score = api.score(report, generated)
    assert score.recall == 1.0 and score.precision == 1.0


def test_score_accepts_manifest_value_and_paths(tmp_path):
    generated = api.generate(GenConfig(seed=4, nranks=4,
                                       bugs=("put_origin",)))
    generated.save(str(tmp_path))
    report = api.run_check(replay, 4,
                           params={"spec": generated.program},
                           scope="all")
    by_value = api.score(report, generated.manifest)
    by_dir = api.score(report, tmp_path)
    by_file = api.score(report, tmp_path / "manifest.json")
    assert by_value.to_dict() == by_dir.to_dict() == by_file.to_dict()
    assert isinstance(Manifest.load(str(tmp_path / "manifest.json")),
                      Manifest)


def test_fuzz_single_seed_default():
    report = api.fuzz(GenConfig(seed=21, nranks=4, bugs=("any",)),
                      differential=False)
    assert isinstance(report, FuzzReport)
    assert [c.seed for c in report.cases] == [21]
    assert report.ok


def test_fuzz_seed_corpus_with_overrides():
    report = api.fuzz(seeds=range(2), differential=False, nranks=4,
                      bugs=("op_pair",))
    assert [c.seed for c in report.cases] == [0, 1]
    assert report.recall == 1.0 and report.mismatches == 0


def test_fuzz_rejects_bad_override():
    with pytest.raises(ValueError):
        api.fuzz(nranks=1, differential=False)
