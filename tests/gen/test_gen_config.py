"""GenConfig validation, derivation, and the legacy-kwarg shim."""

import warnings

import pytest

from repro.gen import BUG_PATTERNS, GenConfig, coerce_gen_config
from repro.gen.config import _UNSET, _reset_legacy_warning


def test_defaults_are_valid():
    cfg = GenConfig()
    assert cfg.nranks == 4
    assert cfg.bugs == ()
    assert dict(cfg.epoch_weights).keys() == {
        "fence", "lock", "lockall", "pscw"}


@pytest.mark.parametrize("bad", [
    {"nranks": 1},
    {"rounds": 0},
    {"ops_per_round": 0},
    {"slot_elems": 1},
    {"reps": 0},
    {"flush_prob": 1.5},
    {"flush_prob": -0.1},
    {"trace_format": "xml"},
    {"bugs": ("no_such_pattern",)},
    {"epoch_weights": (("fence", -1.0),)},
    {"epoch_weights": (("quantum", 1.0),)},
    {"epoch_weights": (("fence", 0.0),)},
    {"op_weights": (("put", 0.0), ("get", 0.0))},
])
def test_validation_rejects(bad):
    with pytest.raises(ValueError):
        GenConfig(**bad)


def test_replace_derives_new_config():
    cfg = GenConfig(seed=1)
    derived = cfg.replace(nranks=8, bugs=("any",))
    assert derived.nranks == 8 and derived.bugs == ("any",)
    assert cfg.nranks == 4  # original untouched


def test_dict_roundtrip():
    cfg = GenConfig(seed=3, nranks=6, bugs=("op_pair", "any"),
                    epoch_weights=(("fence", 2.0), ("lock", 1.0)),
                    reps=5, trace_format="binary")
    assert GenConfig.from_dict(cfg.to_dict()) == cfg


def test_config_is_hashable_corpus_key():
    assert GenConfig(seed=1) == GenConfig(seed=1)
    assert len({GenConfig(seed=1), GenConfig(seed=1),
                GenConfig(seed=2)}) == 2


def test_coerce_passthrough():
    cfg = GenConfig(seed=9)
    assert coerce_gen_config(cfg, "t") is cfg
    assert coerce_gen_config(None, "t") == GenConfig()


def test_coerce_rejects_wrong_type():
    with pytest.raises(TypeError):
        coerce_gen_config({"seed": 1}, "t")


def test_legacy_nbugs_translates_and_warns_once():
    _reset_legacy_warning()
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        cfg = coerce_gen_config(None, "t", nbugs=3)
        coerce_gen_config(None, "t", nbugs=2)  # second call: no warning
    assert cfg.bugs == ("any", "any", "any")
    deps = [w for w in caught if issubclass(w.category, DeprecationWarning)]
    assert len(deps) == 1
    assert "deprecated" in str(deps[0].message)


def test_unset_sentinel_does_not_warn():
    _reset_legacy_warning()
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        cfg = coerce_gen_config(None, "t", nbugs=_UNSET)
    assert cfg == GenConfig()
    assert not caught


def test_bug_patterns_frozen_contract():
    # docs/fuzzing.md and the manifest's paper-class map key off these
    assert BUG_PATTERNS == ("get_local", "put_origin", "op_pair",
                            "conflicting_puts", "target_race")
