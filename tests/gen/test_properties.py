"""Hypothesis properties of the generator.

Three invariants the whole harness rests on:

* every generated program is schedulable — ``replay`` runs it to
  completion on the simulated runtime, any epoch mix, no deadlock;
* generation is a pure function of the config — the same seed yields a
  byte-identical program and manifest;
* the clean-traffic rules are sound — a configuration with no injected
  bugs produces zero findings, on both detection engines.
"""

from hypothesis import given, settings, strategies as st

from repro.core.checker import check_traces
from repro.core.config import CheckConfig
from repro.gen import GenConfig, generate_program, replay
from repro.gen.fuzz import profile_program
from repro.simmpi import run_app

EPOCH_SUBSETS = st.lists(
    st.sampled_from(("fence", "lock", "lockall", "pscw")),
    min_size=1, max_size=4, unique=True)


def _config(seed, nranks, rounds, ops, kinds, nbugs):
    return GenConfig(
        seed=seed, nranks=nranks, rounds=rounds, ops_per_round=ops,
        epoch_weights=tuple((k, 1.0) for k in kinds),
        bugs=("any",) * nbugs)


@given(seed=st.integers(0, 10_000), nranks=st.integers(2, 9),
       rounds=st.integers(1, 4), ops=st.integers(1, 4),
       kinds=EPOCH_SUBSETS, nbugs=st.integers(0, 3))
@settings(max_examples=25, deadline=None)
def test_generated_programs_are_schedulable(seed, nranks, rounds, ops,
                                            kinds, nbugs):
    generated = generate_program(
        _config(seed, nranks, rounds, ops, kinds, nbugs))
    # runs to completion on the simulated runtime (deadlock would hang
    # the scheduler and raise), under a delivery/schedule the generator
    # did not pick
    run_app(replay, nranks, params={"spec": generated.program},
            sched_policy="random", seed=seed + 1, delivery="eager")


@given(seed=st.integers(0, 10_000), nranks=st.integers(2, 9),
       kinds=EPOCH_SUBSETS, nbugs=st.integers(0, 3))
@settings(max_examples=25, deadline=None)
def test_same_seed_same_bytes(seed, nranks, kinds, nbugs):
    cfg = _config(seed, nranks, 3, 3, kinds, nbugs)
    first, second = generate_program(cfg), generate_program(cfg)
    assert first.program.canonical_json() == second.program.canonical_json()
    assert first.manifest.canonical_json() == \
        second.manifest.canonical_json()


@given(seed=st.integers(0, 10_000), nranks=st.integers(2, 8),
       kinds=EPOCH_SUBSETS)
@settings(max_examples=10, deadline=None)
def test_bug_free_programs_are_silent(tmp_path_factory, seed, nranks,
                                      kinds):
    generated = generate_program(_config(seed, nranks, 3, 3, kinds, 0))
    trace_dir = tmp_path_factory.mktemp("clean-traces")
    profiled = profile_program(generated, trace_dir=str(trace_dir))
    for engine in ("sweep", "pairwise"):
        report = check_traces(profiled.traces, CheckConfig(engine=engine))
        assert report.findings == [], (
            f"clean program (seed={seed}) produced findings on {engine}: "
            f"{[e.to_dict() for e in report.findings]}")
