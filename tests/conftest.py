"""Suite-wide fixtures: hermetic run-ledger placement.

``mc-checker check``/``run-check`` append a flight record to the run
ledger by default; pointing ``MCCHECKER_LEDGER_DIR`` at a per-test tmp
dir keeps tests from writing to (or reading) the developer's real
``~/.mc-checker/ledger``.
"""

import pytest


@pytest.fixture(autouse=True)
def _hermetic_ledger(tmp_path, monkeypatch):
    ledger_dir = tmp_path / "ledger"
    monkeypatch.setenv("MCCHECKER_LEDGER_DIR", str(ledger_dir))
    return ledger_dir
