"""Producer differential: the bulk columnar lane must be invisible.

The zero-object emission lane (``ProfilerHook(bulk=True)``, the default)
coalesces block accesses into ``TraceWriter.append_mem_columns`` /
``append_call`` fast paths.  Its contract is byte-identity with the
scalar reference lane: every bundled bug case, profiled through both
lanes in both trace formats, must produce identical trace files —
hence identical content digests — and byte-identical checker reports
under both memory models.

A hypothesis property test additionally drives ``append_mem_columns``
across mem-block flush boundaries, interleaved with scalar writes and
call records, and round-trips the result through ``TraceReader``.
"""

import hashlib
import json
import os
import tempfile

import pytest
from hypothesis import example, given, settings, strategies as st

from repro.apps.registry import BUG_CASES, EXTRA_CASES
from repro.core.checker import check_traces
from repro.core.config import CheckConfig
from repro.profiler.events import CallEvent, MemEvent
from repro.profiler.session import profile_run
from repro.profiler.tracer import (
    FORMAT_BINARY, FORMAT_TEXT, TraceReader, TraceWriter,
)
from repro.util.location import SourceLocation

ALL_CASES = list(BUG_CASES) + list(EXTRA_CASES)
RANKS_CAP = 8
MEMORY_MODELS = ("separate", "unified")
FORMATS = (FORMAT_TEXT, FORMAT_BINARY)

_TRACES = {}


def traces_for(case, fmt, bulk):
    """Profile each (case, format, lane) once; reuse across tests."""
    key = (case.name, fmt, bulk)
    if key not in _TRACES:
        nranks = min(case.nranks, RANKS_CAP)
        _TRACES[key] = profile_run(
            case.app, nranks, params=case.params(True),
            trace_format=fmt, bulk=bulk).traces
    return _TRACES[key]


def canonical(report) -> str:
    """Byte-comparable form of a report, modulo wall-clock timings."""
    payload = report.to_dict()
    payload["stats"].pop("phase_seconds")
    return json.dumps(payload, sort_keys=True)


def file_digests(traces):
    out = {}
    for name in sorted(os.listdir(traces.directory)):
        if name.startswith("trace."):
            with open(os.path.join(traces.directory, name), "rb") as fh:
                out[name] = hashlib.sha256(fh.read()).hexdigest()
    return out


@pytest.mark.parametrize("fmt", FORMATS)
@pytest.mark.parametrize("case", ALL_CASES, ids=lambda c: c.name)
def test_lanes_produce_identical_trace_files(case, fmt):
    scalar = traces_for(case, fmt, bulk=False)
    bulk = traces_for(case, fmt, bulk=True)
    assert scalar.nranks == bulk.nranks
    assert file_digests(scalar) == file_digests(bulk), (
        f"{case.name}/{fmt}: bulk lane changed the trace bytes")
    for rank in range(scalar.nranks):
        with scalar.reader(rank) as a, bulk.reader(rank) as b:
            assert a.content_digest() == b.content_digest(), (
                f"{case.name}/{fmt}/rank{rank}: content digest diverged")


@pytest.mark.parametrize("memory_model", MEMORY_MODELS)
@pytest.mark.parametrize("case", ALL_CASES, ids=lambda c: c.name)
def test_lane_reports_identical(case, memory_model):
    config = CheckConfig(memory_model=memory_model)
    ref = canonical(check_traces(traces_for(case, FORMAT_TEXT, False),
                                 config=config))
    for fmt in FORMATS:
        got = canonical(check_traces(traces_for(case, fmt, True),
                                     config=config))
        assert got == ref, (
            f"{case.name}/{memory_model}/{fmt}: bulk-lane report diverged")


# ----------------------------------------------------------------------
# append_mem_columns round-trip property
# ----------------------------------------------------------------------

_LOC = SourceLocation("app.py", 42, "stepper")

_SCALAR = st.tuples(
    st.just("mem"), st.sampled_from(["load", "store"]),
    st.integers(0, 1 << 24), st.integers(1, 64))
_BLOCK = st.tuples(
    st.just("block"), st.sampled_from(["load", "store"]),
    st.integers(0, 1 << 24), st.integers(1, 64),
    st.integers(1, 3000), st.integers(0, 128))
_CALL = st.tuples(
    st.just("call"), st.sampled_from(["Barrier", "Win_fence", "Put"]))

OPS = st.lists(st.one_of(_SCALAR, _BLOCK, _CALL), min_size=1, max_size=10)

#: one block larger than the 4096-row flush threshold plus stragglers on
#: both sides — pins the chunk-boundary behaviour even on a minimal run
_BOUNDARY = [("mem", "load", 0, 8),
             ("block", "store", 64, 8, 5000, 8),
             ("call", "Win_fence"),
             ("block", "load", 0, 8, 4096, 0),
             ("mem", "store", 8, 8)]


def _emit(path, fmt, ops, fast):
    """Write ``ops`` through the fast paths or the scalar reference."""
    seq = 0
    with TraceWriter(path, rank=0, nranks=1, app="prop",
                     format=fmt) as writer:
        for op in ops:
            if op[0] == "mem":
                _, access, addr, size = op
                writer.write(MemEvent(rank=0, seq=seq, access=access,
                                      addr=addr, size=size, var="buf",
                                      loc=_LOC))
                seq += 1
            elif op[0] == "block":
                _, access, addr, size, count, stride = op
                if fast:
                    writer.append_mem_columns(access, "buf", _LOC, seq,
                                              addr, size, count, stride)
                else:
                    for i in range(count):
                        writer.write(MemEvent(
                            rank=0, seq=seq + i, access=access,
                            addr=addr + i * stride, size=size, var="buf",
                            loc=_LOC))
                seq += count
            else:
                _, fn = op
                if fast:
                    writer.append_call(fn, {"count": 3, "skip": None},
                                       _LOC, seq)
                else:
                    writer.write(CallEvent(rank=0, seq=seq, fn=fn,
                                           args={"count": 3}, loc=_LOC))
                seq += 1
        events = writer.events_written
    return events


@pytest.mark.parametrize("fmt", FORMATS)
@settings(max_examples=40, deadline=None)
@example(ops=_BOUNDARY)
@given(ops=OPS)
def test_append_mem_columns_round_trip(fmt, ops):
    with tempfile.TemporaryDirectory() as tmp:
        fast_path = os.path.join(tmp, "trace.fast")
        ref_path = os.path.join(tmp, "trace.ref")
        n_fast = _emit(fast_path, fmt, ops, fast=True)
        n_ref = _emit(ref_path, fmt, ops, fast=False)
        assert n_fast == n_ref
        if fmt == FORMAT_TEXT:
            # text is one line per event: framing cannot diverge
            with open(fast_path, "rb") as fh:
                fast_bytes = fh.read()
            with open(ref_path, "rb") as fh:
                ref_bytes = fh.read()
            assert fast_bytes == ref_bytes
        # binary M-frame boundaries may differ across lanes when a bulk
        # append crosses the flush threshold; the contract is that the
        # content digests and the decoded stream cannot tell
        with TraceReader(fast_path) as reader:
            events = reader.events()
            digest = reader.content_digest()
            counts = reader.counts()
        with TraceReader(ref_path) as reader:
            assert digest == reader.content_digest()
            assert counts == reader.counts()
        # the decoded stream matches the op list (seq, addr arithmetic)
        seq = 0
        it = iter(events)
        for op in ops:
            if op[0] == "mem":
                event = next(it)
                assert (event.seq, event.addr, event.size,
                        event.access) == (seq, op[2], op[3], op[1])
                seq += 1
            elif op[0] == "block":
                _, access, addr, size, count, stride = op
                for i in range(count):
                    event = next(it)
                    assert (event.seq, event.addr, event.access) == \
                        (seq + i, addr + i * stride, access)
                seq += count
            else:
                event = next(it)
                assert (event.seq, event.fn) == (seq, op[1])
                seq += 1
        assert next(it, None) is None
