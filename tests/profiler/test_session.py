"""Profiled-run integration tests: scopes, locations, determinism."""

import pytest

from repro.apps.jacobi import jacobi
from repro.apps.lu import lu
from repro.profiler.events import CallEvent, MemEvent
from repro.profiler.session import baseline_run, profile_run
from repro.stanalyzer import InstrumentationReport


class TestScopes:
    def test_report_scope_instruments_relevant_only(self):
        run = profile_run(lu, nranks=2, params=dict(n=12), scope="report")
        vars_seen = {e.var for events in run.traces.all_events().values()
                     for e in events if isinstance(e, MemEvent)}
        assert "pivot" in vars_seen or "row_buf" in vars_seen
        assert "a" not in vars_seen

    def test_all_scope_instruments_everything(self):
        run = profile_run(lu, nranks=2, params=dict(n=12), scope="all")
        vars_seen = {e.var for events in run.traces.all_events().values()
                     for e in events if isinstance(e, MemEvent)}
        assert "a" in vars_seen

    def test_none_scope_has_no_mem_events(self):
        run = profile_run(lu, nranks=2, params=dict(n=12), scope="none")
        counts = run.traces.event_counts()
        assert counts["mem"] == 0
        assert counts["call"] > 0

    def test_all_scope_writes_more_events(self):
        selective = profile_run(lu, nranks=2, params=dict(n=12),
                                scope="report")
        everything = profile_run(lu, nranks=2, params=dict(n=12),
                                 scope="all")
        assert everything.events_written > selective.events_written

    def test_explicit_report_overrides(self):
        report = InstrumentationReport(buffer_names={"a"})
        run = profile_run(lu, nranks=2, params=dict(n=12), scope="report",
                          report=report)
        vars_seen = {e.var for events in run.traces.all_events().values()
                     for e in events if isinstance(e, MemEvent)}
        # "a" from the explicit report; "pivot" because window buffers are
        # instrumented by definition (dynamic refinement at Win_create)
        assert vars_seen == {"a", "pivot"}
        assert "row_buf" not in vars_seen  # not in report, not a window

    def test_invalid_scope_rejected(self):
        with pytest.raises(ValueError):
            profile_run(lu, nranks=2, params=dict(n=12), scope="some")


class TestTraceContents:
    def test_locations_point_at_app_code(self):
        run = profile_run(jacobi, nranks=2,
                          params=dict(buggy=False, interior=4, iterations=1))
        for events in run.traces.all_events().values():
            for event in events:
                assert "simmpi" not in event.loc.filename
                assert "profiler" not in event.loc.filename

    def test_seq_dense_per_rank(self):
        run = profile_run(jacobi, nranks=2,
                          params=dict(buggy=False, interior=4, iterations=1))
        for rank, events in run.traces.all_events().items():
            assert [e.seq for e in events] == list(range(len(events)))

    def test_app_name_in_header(self):
        run = profile_run(lu, nranks=2, params=dict(n=12),
                          app_name="my-lu")
        assert run.traces.reader(0).header.app == "my-lu"

    def test_results_match_baseline_semantics(self):
        profiled = profile_run(lu, nranks=2, params=dict(n=16, verify=True))
        assert max(profiled.results) < 1e-9  # instrumented run still correct


class TestDeterminism:
    def test_same_seed_same_trace(self):
        runs = [profile_run(jacobi, nranks=3,
                            params=dict(buggy=True, interior=4,
                                        iterations=2),
                            seed=7, delivery="random",
                            capture_locations=False)
                for _ in range(2)]
        a = [[e.encode() for e in events]
             for events in runs[0].traces.all_events().values()]
        b = [[e.encode() for e in events]
             for events in runs[1].traces.all_events().values()]
        assert a == b


class TestBaseline:
    def test_baseline_returns_elapsed(self):
        elapsed = baseline_run(lu, nranks=2, params=dict(n=12))
        assert elapsed > 0
