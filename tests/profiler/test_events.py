"""Event model and call-taxonomy tests (section IV-B's four categories)."""

import pytest

from repro.profiler.events import (
    CATEGORY_DATATYPE, CATEGORY_ONE_SIDED, CATEGORY_SUPPORT, CATEGORY_SYNC,
    COLLECTIVE_CALLS, CallEvent, MemEvent, call_category, decode_event,
)
from repro.util.errors import TraceFormatError
from repro.util.location import SourceLocation


class TestTaxonomy:
    @pytest.mark.parametrize("fn", ["Put", "Get", "Accumulate", "Win_fence",
                                    "Win_lock", "Win_create", "Win_wait"])
    def test_one_sided(self, fn):
        assert call_category(fn) == CATEGORY_ONE_SIDED

    @pytest.mark.parametrize("fn", ["Type_contiguous", "Type_vector",
                                    "Type_indexed", "Type_struct"])
    def test_datatype(self, fn):
        assert call_category(fn) == CATEGORY_DATATYPE

    @pytest.mark.parametrize("fn", ["Barrier", "Bcast", "Send", "Recv",
                                    "Allreduce", "Wait"])
    def test_sync(self, fn):
        assert call_category(fn) == CATEGORY_SYNC

    @pytest.mark.parametrize("fn", ["Comm_rank", "Group_incl", "Comm_split"])
    def test_support(self, fn):
        assert call_category(fn) == CATEGORY_SUPPORT

    def test_unknown_raises(self):
        with pytest.raises(KeyError):
            call_category("Win_teleport")

    def test_collectives_are_sync_or_one_sided_or_support(self):
        for fn in COLLECTIVE_CALLS:
            assert call_category(fn) in (CATEGORY_SYNC, CATEGORY_ONE_SIDED,
                                         CATEGORY_SUPPORT)


class TestRoundTrip:
    def test_call_event(self):
        event = CallEvent(rank=2, seq=7, fn="Put",
                          args={"win": 0, "target": 1, "group": (1, 2)},
                          loc=SourceLocation("app.py", 12, "main"))
        back = decode_event(2, event.encode())
        assert isinstance(back, CallEvent)
        assert back.fn == "Put"
        assert back.seq == 7
        assert back.args["win"] == 0
        assert back.args["group"] == (1, 2)
        assert back.loc == event.loc

    def test_mem_event(self):
        event = MemEvent(rank=1, seq=3, access="store", addr=4096, size=8,
                         var="grid", loc=SourceLocation("a.py", 5, "f"))
        back = decode_event(1, event.encode())
        assert isinstance(back, MemEvent)
        assert (back.access, back.addr, back.size, back.var) == \
            ("store", 4096, 8, "grid")

    def test_unknown_kind_rejected(self):
        with pytest.raises(TraceFormatError):
            decode_event(0, "Z seq=0")

    def test_category_property(self):
        assert CallEvent(0, 0, "Barrier").category == CATEGORY_SYNC
