"""Trace-format robustness: malformed inputs must fail loudly, not crash
or silently mis-analyze."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.profiler.events import decode_event
from repro.profiler.tracer import TraceReader, TraceSet
from repro.util.errors import TraceFormatError
from repro.util.records import decode_record


class TestMalformedLines:
    @pytest.mark.parametrize("line", [
        "",                     # empty
        "X seq=0",              # unknown kind
        "C",                    # no fields at all (missing seq/fn/loc)
        "C seq=zzz fn=$Put",    # unparseable int
        "M seq=0 a=$load",      # missing addr/size
        "C seq=0 fn=$Put loc=$a:b:c",  # non-numeric line number
    ])
    def test_raises_trace_format_error(self, line):
        with pytest.raises((TraceFormatError, ValueError)):
            decode_event(0, line)

    def test_truncated_field(self):
        with pytest.raises(TraceFormatError):
            decode_record("C seq")


@given(st.text(alphabet=st.characters(min_codepoint=32, max_codepoint=126),
               min_size=1, max_size=60))
@settings(max_examples=120, deadline=None)
def test_prop_fuzz_never_crashes_uncontrolled(line):
    """Arbitrary printable garbage either decodes (if it happens to be
    well-formed) or raises a controlled error type."""
    try:
        decode_event(0, line)
    except (TraceFormatError, ValueError, KeyError):
        pass  # controlled failure modes only


class TestCorruptTraceFiles:
    def test_header_with_wrong_version(self, tmp_path):
        path = tmp_path / "trace.0.log"
        path.write_text("H v=99 rank=0 nranks=1 app=$x\n")
        with pytest.raises(TraceFormatError, match="version"):
            TraceReader(str(path))

    def test_body_corruption_surfaces_on_iteration(self, tmp_path):
        path = tmp_path / "trace.0.log"
        path.write_text("H v=1 rank=0 nranks=1 app=$x\n"
                        "C seq=0 fn=$Barrier comm=0 loc=$a.py:1:f\n"
                        "GARBAGE LINE HERE\n")
        reader = TraceReader(str(path))
        with pytest.raises((TraceFormatError, ValueError)):
            list(reader)

    def test_non_trace_files_ignored_by_traceset(self, tmp_path):
        (tmp_path / "trace.0.log").write_text(
            "H v=1 rank=0 nranks=1 app=$x\n")
        (tmp_path / "notes.txt").write_text("irrelevant")
        (tmp_path / "trace.backup").write_text("irrelevant")
        ts = TraceSet(str(tmp_path))
        assert ts.nranks == 1
