"""Binary columnar trace format (v2) and the vectorized reader paths.

Covers the format-parity contract: a randomized event stream written in
either format reads back as the *same* typed events, the footer-served
``event_counts`` equals a full scan, and an unclosed or truncated binary
file is rejected with a clear :class:`TraceFormatError` rather than
silently losing events.
"""

import os

import pytest
from hypothesis import given, settings, strategies as st

from repro.profiler.events import CallEvent, MemEvent
from repro.profiler.tracer import (
    FORMAT_BINARY, FORMAT_TEXT, MemBlock, TraceReader, TraceSet,
    TraceWriter, _END_MAGIC, _MAGIC,
)
from repro.util.errors import TraceFormatError
from repro.util.location import SourceLocation

FORMATS = (FORMAT_TEXT, FORMAT_BINARY)

LOC_A = SourceLocation("app.py", 10, "main")
LOC_B = SourceLocation("kernel.py", 42, "compute")


def sample_events(rank, nmems=5):
    events = [CallEvent(rank=rank, seq=0, fn="Win_create",
                        args={"win": 1, "comm": 0, "base": 4096,
                              "size": 256, "disp_unit": 1, "var": "buf"},
                        loc=LOC_A)]
    seq = 1
    for i in range(nmems):
        events.append(MemEvent(
            rank=rank, seq=seq, access="store" if i % 2 else "load",
            addr=4096 + 8 * i, size=8, var="buf",
            loc=LOC_A if i % 3 else LOC_B))
        seq += 1
    events.append(CallEvent(rank=rank, seq=seq, fn="Win_fence",
                            args={"win": 1}, loc=LOC_B))
    return events


def write_trace(directory, rank, events, fmt, nranks=1):
    path = TraceSet.rank_path(str(directory), rank, fmt)
    with TraceWriter(path, rank, nranks, app="t", format=fmt) as writer:
        for event in events:
            writer.write(event)
    return path


class TestRoundTrip:
    @pytest.mark.parametrize("fmt", FORMATS)
    def test_typed_iteration_identical(self, tmp_path, fmt):
        events = sample_events(0)
        path = write_trace(tmp_path, 0, events, fmt)
        with TraceReader(path) as reader:
            assert reader.format == fmt
            assert reader.events() == events

    @pytest.mark.parametrize("fmt", FORMATS)
    def test_stream_preserves_order_and_packs_mems(self, tmp_path, fmt):
        events = sample_events(0)
        path = write_trace(tmp_path, 0, events, fmt)
        with TraceReader(path) as reader:
            items = list(reader.stream())
        kinds = [type(item).__name__ for item in items]
        assert kinds == ["CallEvent", "MemBlock", "CallEvent"]
        # flattening the stream restores the exact typed event sequence
        flat = []
        for item in items:
            flat.extend(item.iter_events() if isinstance(item, MemBlock)
                        else [item])
        assert flat == events

    @pytest.mark.parametrize("fmt", FORMATS)
    def test_mem_block_columns_match_events(self, tmp_path, fmt):
        events = sample_events(0, nmems=7)
        mems = [e for e in events if isinstance(e, MemEvent)]
        path = write_trace(tmp_path, 0, events, fmt)
        with TraceReader(path) as reader:
            blocks = list(reader.mem_blocks())
        assert sum(len(b) for b in blocks) == len(mems)
        block = blocks[0]
        arr = block.array
        assert arr["addr"].tolist() == [m.addr for m in mems]
        assert arr["seq"].tolist() == [m.seq for m in mems]
        assert arr["size"].tolist() == [m.size for m in mems]
        assert [block.table.string(v) for v in arr["var"]] == \
            [m.var for m in mems]
        assert [block.table.loc(v) for v in arr["loc"]] == \
            [m.loc for m in mems]
        assert arr["access"].tolist() == \
            [0 if m.access == "load" else 1 for m in mems]

    def test_binary_much_smaller_than_text(self, tmp_path):
        events = sample_events(0, nmems=2000)
        text = write_trace(tmp_path, 0, events, FORMAT_TEXT)
        os.rename(text, str(tmp_path / "text.trace"))
        binary = write_trace(tmp_path, 0, events, FORMAT_BINARY)
        assert os.path.getsize(binary) * 2 <= \
            os.path.getsize(str(tmp_path / "text.trace"))


SMALL_INT = st.integers(min_value=0, max_value=2 ** 40)


@st.composite
def event_stream(draw):
    """A randomized per-rank event stream with valid, increasing seqs."""
    n = draw(st.integers(min_value=0, max_value=40))
    events = []
    for seq in range(n):
        if draw(st.booleans()):
            events.append(MemEvent(
                rank=0, seq=seq,
                access=draw(st.sampled_from(("load", "store"))),
                addr=draw(SMALL_INT), size=draw(
                    st.integers(min_value=1, max_value=1 << 20)),
                var=draw(st.text(
                    alphabet=st.characters(min_codepoint=33,
                                           max_codepoint=126),
                    min_size=1, max_size=8)),
                loc=draw(st.sampled_from((LOC_A, LOC_B)))))
        else:
            events.append(CallEvent(
                rank=0, seq=seq,
                fn=draw(st.sampled_from(("Barrier", "Win_fence", "Put"))),
                args={"win": draw(st.integers(0, 3))},
                loc=draw(st.sampled_from((LOC_A, LOC_B)))))
    return events


@given(events=event_stream(), fmt=st.sampled_from(FORMATS))
@settings(max_examples=60, deadline=None)
def test_prop_round_trip_both_formats(tmp_path_factory, events, fmt):
    tmp_path = tmp_path_factory.mktemp("prop")
    path = write_trace(tmp_path, 0, events, fmt)
    with TraceReader(path) as reader:
        assert reader.events() == events
        counts = reader.counts()
    assert counts["call"] == sum(
        isinstance(e, CallEvent) for e in events)
    assert counts["mem"] == counts["load"] + counts["store"]
    assert counts["load"] == sum(
        isinstance(e, MemEvent) and e.access == "load" for e in events)


class TestWriterLifecycle:
    def test_context_manager_closes(self, tmp_path):
        path = TraceSet.rank_path(str(tmp_path), 0, FORMAT_BINARY)
        with TraceWriter(path, 0, 1, format=FORMAT_BINARY) as writer:
            writer.write(sample_events(0)[0])
        with TraceReader(path) as reader:
            assert reader.counts()["call"] == 1

    @pytest.mark.parametrize("fmt", FORMATS)
    def test_context_manager_aborts_on_error(self, tmp_path, fmt):
        path = TraceSet.rank_path(str(tmp_path), 0, fmt)
        with pytest.raises(RuntimeError):
            with TraceWriter(path, 0, 1, format=fmt) as writer:
                for event in sample_events(0):
                    writer.write(event)
                raise RuntimeError("boom")
        assert writer._closed
        if fmt == FORMAT_BINARY:
            # no footer/trailer => the reader refuses the file
            with pytest.raises(TraceFormatError):
                TraceReader(path)

    def test_unclosed_binary_writer_detected(self, tmp_path):
        path = TraceSet.rank_path(str(tmp_path), 0, FORMAT_BINARY)
        writer = TraceWriter(path, 0, 1, format=FORMAT_BINARY)
        for event in sample_events(0, nmems=20):
            writer.write(event)
        writer.abort()  # simulates a crash before close()
        with pytest.raises(TraceFormatError,
                           match="trailer|truncated|unclosed|empty"):
            TraceReader(path)

    def test_truncated_binary_file_detected(self, tmp_path):
        path = TraceSet.rank_path(str(tmp_path), 0, FORMAT_BINARY)
        write_trace(tmp_path, 0, sample_events(0, nmems=50),
                    FORMAT_BINARY)
        data = open(path, "rb").read()
        open(path, "wb").write(data[:len(data) // 2])
        with pytest.raises(TraceFormatError):
            TraceReader(path)

    def test_empty_file_detected(self, tmp_path):
        path = TraceSet.rank_path(str(tmp_path), 0, FORMAT_BINARY)
        open(path, "wb").close()
        with pytest.raises(TraceFormatError, match="empty"):
            TraceReader(path)

    def test_close_is_idempotent(self, tmp_path):
        path = TraceSet.rank_path(str(tmp_path), 0, FORMAT_BINARY)
        writer = TraceWriter(path, 0, 1, format=FORMAT_BINARY)
        writer.write(sample_events(0)[0])
        writer.close()
        writer.close()
        with TraceReader(path) as reader:
            # a double close must not have appended a second footer
            assert reader._mm[-len(_END_MAGIC):] == _END_MAGIC
            assert reader._mm[:len(_MAGIC)] == _MAGIC


class TestReaderHandleReuse:
    @pytest.mark.parametrize("fmt", FORMATS)
    def test_multiple_iterations_one_reader(self, tmp_path, fmt):
        events = sample_events(0)
        path = write_trace(tmp_path, 0, events, fmt)
        with TraceReader(path) as reader:
            assert reader.events() == events
            assert reader.events() == events  # handle is reused, not reopened
            calls, counts = reader.read_calls()
            assert [c.fn for c in calls] == ["Win_create", "Win_fence"]
            assert reader.events() == events  # still fine after read_calls

    @pytest.mark.parametrize("fmt", FORMATS)
    def test_counts_match_full_scan(self, tmp_path, fmt):
        events = sample_events(0, nmems=11)
        path = write_trace(tmp_path, 0, events, fmt)
        with TraceReader(path) as reader:
            counts = reader.counts()
            scanned = {"call": 0, "mem": 0, "load": 0, "store": 0}
            for event in reader:
                if isinstance(event, CallEvent):
                    scanned["call"] += 1
                else:
                    scanned["mem"] += 1
                    scanned[event.access] += 1
        assert counts == scanned


class TestTraceSet:
    @pytest.mark.parametrize("fmt", FORMATS)
    def test_event_counts_differential(self, tmp_path, fmt):
        for rank in range(3):
            write_trace(tmp_path, rank,
                        sample_events(rank, nmems=4 + rank), fmt,
                        nranks=3)
        traces = TraceSet(str(tmp_path))
        counts = traces.event_counts()
        scanned = {"call": 0, "mem": 0, "load": 0, "store": 0}
        for rank in range(3):
            for event in traces.iter_events(rank):
                if isinstance(event, CallEvent):
                    scanned["call"] += 1
                else:
                    scanned["mem"] += 1
                    scanned[event.access] += 1
        assert counts == scanned

    def test_mixed_format_set(self, tmp_path):
        write_trace(tmp_path, 0, sample_events(0), FORMAT_TEXT, nranks=2)
        write_trace(tmp_path, 1, sample_events(1), FORMAT_BINARY,
                    nranks=2)
        traces = TraceSet(str(tmp_path))
        assert traces.nranks == 2
        assert traces.events(0) == sample_events(0)
        assert traces.events(1) == sample_events(1)

    def test_both_formats_for_one_rank_rejected(self, tmp_path):
        write_trace(tmp_path, 0, sample_events(0), FORMAT_TEXT)
        write_trace(tmp_path, 0, sample_events(0), FORMAT_BINARY)
        with pytest.raises(TraceFormatError, match="both"):
            TraceSet(str(tmp_path))

    def test_iter_events_is_lazy(self, tmp_path):
        write_trace(tmp_path, 0, sample_events(0), FORMAT_BINARY)
        traces = TraceSet(str(tmp_path))
        iterator = traces.iter_events(0)
        first = next(iterator)
        assert isinstance(first, CallEvent)
        assert list(iterator) == sample_events(0)[1:]

    def test_backup_files_ignored(self, tmp_path):
        write_trace(tmp_path, 0, sample_events(0), FORMAT_BINARY)
        (tmp_path / "trace.backup").write_text("junk")
        (tmp_path / "trace.0.bin.orig").write_text("junk")
        traces = TraceSet(str(tmp_path))
        assert traces.nranks == 1
