"""Trace file writer/reader/set tests."""

import os

import pytest

from repro.profiler.events import CallEvent, MemEvent
from repro.profiler.tracer import TraceReader, TraceSet, TraceWriter
from repro.util.errors import TraceFormatError


def write_trace(tmp_path, rank, nranks, events):
    path = TraceSet.rank_path(str(tmp_path), rank)
    writer = TraceWriter(path, rank, nranks, app="t")
    for event in events:
        writer.write(event)
    writer.close()
    return path


class TestWriterReader:
    def test_roundtrip(self, tmp_path):
        events = [CallEvent(0, 0, "Barrier", {"comm": 0}),
                  MemEvent(0, 1, "load", 4096, 8, "x")]
        path = write_trace(tmp_path, 0, 1, events)
        reader = TraceReader(path)
        assert reader.header.rank == 0
        assert reader.header.nranks == 1
        assert reader.header.app == "t"
        back = reader.events()
        assert len(back) == 2
        assert back[0].fn == "Barrier"
        assert back[1].addr == 4096

    def test_large_trace_buffering(self, tmp_path):
        events = [MemEvent(0, i, "load", 4096 + i, 8, "x")
                  for i in range(10_000)]
        path = write_trace(tmp_path, 0, 1, events)
        assert len(TraceReader(path).events()) == 10_000

    def test_missing_header_rejected(self, tmp_path):
        path = tmp_path / "trace.0.log"
        path.write_text("C seq=0 fn=$Barrier loc=$a:1:f\n")
        with pytest.raises(TraceFormatError, match="header"):
            TraceReader(str(path))

    def test_events_written_counter(self, tmp_path):
        path = TraceSet.rank_path(str(tmp_path), 0)
        writer = TraceWriter(path, 0, 1)
        writer.write(CallEvent(0, 0, "Barrier", {}))
        assert writer.events_written == 1
        writer.close()


class TestTraceSet:
    def test_discovers_all_ranks(self, tmp_path):
        for rank in range(3):
            write_trace(tmp_path, rank, 3,
                        [CallEvent(rank, 0, "Barrier", {"comm": 0})])
        ts = TraceSet(str(tmp_path))
        assert ts.nranks == 3
        assert len(ts.events(2)) == 1

    def test_missing_rank_rejected(self, tmp_path):
        write_trace(tmp_path, 0, 3, [])
        write_trace(tmp_path, 2, 3, [])
        with pytest.raises(TraceFormatError, match="expected traces"):
            TraceSet(str(tmp_path))

    def test_empty_dir_rejected(self, tmp_path):
        with pytest.raises(TraceFormatError, match="no trace files"):
            TraceSet(str(tmp_path))

    def test_event_counts(self, tmp_path):
        write_trace(tmp_path, 0, 2, [
            CallEvent(0, 0, "Barrier", {"comm": 0}),
            MemEvent(0, 1, "load", 0, 8, "x"),
            MemEvent(0, 2, "store", 0, 8, "x"),
        ])
        write_trace(tmp_path, 1, 2, [MemEvent(1, 0, "load", 0, 4, "y")])
        counts = TraceSet(str(tmp_path)).event_counts()
        assert counts == {"call": 1, "mem": 3, "load": 2, "store": 1}
