"""ST-Analyzer taint-analysis tests (section IV-A)."""

import textwrap

from repro.stanalyzer import analyze_source


def analyze(src):
    return analyze_source(textwrap.dedent(src))


class TestSeeds:
    def test_window_buffer_is_relevant(self):
        rep = analyze("""
            def main(mpi):
                grid = mpi.alloc("grid", 16)
                win = mpi.win_create(grid)
        """)
        assert rep.is_relevant("main", "grid")
        assert rep.buffer_names == {"grid"}

    def test_put_origin_is_relevant(self):
        rep = analyze("""
            def main(mpi, win):
                tmp = mpi.alloc("tmp", 4)
                win.put(tmp, target=1)
        """)
        assert rep.is_relevant("main", "tmp")
        assert "tmp" in rep.buffer_names

    def test_get_and_accumulate_origins(self):
        rep = analyze("""
            def main(mpi, win):
                a = mpi.alloc("a", 4)
                b = mpi.alloc("b", 4)
                win.get(a, target=1)
                win.accumulate(b, target=1, op="SUM")
        """)
        assert rep.buffer_names == {"a", "b"}

    def test_keyword_origin_buf(self):
        rep = analyze("""
            def main(mpi, win):
                x = mpi.alloc("x", 4)
                win.put(origin_buf=x, target=1)
        """)
        assert "x" in rep.buffer_names

    def test_irrelevant_buffer_excluded(self):
        rep = analyze("""
            def main(mpi, win):
                used = mpi.alloc("used", 4)
                scratch = mpi.alloc("scratch", 4)
                win.put(used, target=1)
        """)
        assert "scratch" not in rep.buffer_names
        assert not rep.is_relevant("main", "scratch")


class TestPropagation:
    def test_through_assignment(self):
        rep = analyze("""
            def main(mpi, win):
                a = mpi.alloc("a", 4)
                alias = a
                win.put(alias, target=1)
        """)
        assert "a" in rep.buffer_names

    def test_assignment_is_symmetric(self):
        # label flows against assignment direction too (aliasing)
        rep = analyze("""
            def main(mpi, win):
                a = mpi.alloc("a", 4)
                win.put(a, target=1)
                b = a
        """)
        assert rep.is_relevant("main", "b")

    def test_through_call_argument(self):
        rep = analyze("""
            def helper(dst):
                dst[0] = 1

            def main(mpi, win):
                grid = mpi.alloc("grid", 4)
                win.win_create(grid)
                helper(grid)
        """)
        assert rep.is_relevant("helper", "dst")

    def test_rma_inside_callee_taints_caller(self):
        rep = analyze("""
            def sender(win, buf):
                win.put(buf, target=1)

            def main(mpi, win):
                data = mpi.alloc("data", 4)
                sender(win, data)
        """)
        assert "data" in rep.buffer_names

    def test_through_return_value(self):
        rep = analyze("""
            def make(mpi):
                buf = mpi.alloc("buf", 4)
                return buf

            def main(mpi, win):
                mine = make(mpi)
                win.put(mine, target=1)
        """)
        assert "buf" in rep.buffer_names

    def test_through_keyword_call_argument(self):
        rep = analyze("""
            def helper(win, dst=None):
                win.get(dst, target=0)

            def main(mpi, win):
                out = mpi.alloc("out", 4)
                helper(win, dst=out)
        """)
        assert "out" in rep.buffer_names

    def test_through_function_alias(self):
        rep = analyze("""
            def reader(win, out):
                win.get(out, target=0)

            def writer(win, out):
                win.put(out, target=0)

            def main(mpi, win, flag):
                buf = mpi.alloc("buf", 4)
                fn = reader if flag else writer
                fn(win, buf)
        """)
        assert "buf" in rep.buffer_names

    def test_tuple_assignment(self):
        rep = analyze("""
            def main(mpi, win):
                a = mpi.alloc("a", 4)
                b = mpi.alloc("b", 4)
                x, y = a, b
                win.put(x, target=1)
        """)
        assert "a" in rep.buffer_names
        assert "b" not in rep.buffer_names

    def test_transitive_chain(self):
        rep = analyze("""
            def main(mpi, win):
                a = mpi.alloc("a", 4)
                b = a
                c = b
                win.put(c, target=1)
        """)
        assert "a" in rep.buffer_names


class TestConservativeness:
    def test_branch_insensitive(self):
        # only one branch passes the buffer to put, but both aliases are
        # marked — "insensitive to branch and loop" (section IV-A)
        rep = analyze("""
            def main(mpi, win, cond):
                a = mpi.alloc("a", 4)
                if cond:
                    alias = a
                else:
                    alias = mpi.alloc("other", 4)
                win.put(alias, target=1)
        """)
        assert {"a", "other"} <= rep.buffer_names

    def test_scope_separation(self):
        # same variable name in an unrelated function is NOT marked
        rep = analyze("""
            def main(mpi, win):
                buf = mpi.alloc("buf", 4)
                win.put(buf, target=1)

            def unrelated(mpi):
                buf = mpi.alloc("unrelated_buf", 4)
                return buf
        """)
        assert "unrelated_buf" not in rep.buffer_names


class TestReportShape:
    def test_seeds_recorded(self):
        rep = analyze("""
            def main(mpi, win):
                a = mpi.alloc("a", 4)
                win.put(a, target=1)
        """)
        assert ("main", "a") in rep.seeds

    def test_alloc_sites_include_irrelevant(self):
        rep = analyze("""
            def main(mpi):
                a = mpi.alloc("a", 4)
        """)
        assert [(s[0], s[1], s[2]) for s in rep.alloc_sites] == \
            [("main", "a", "a")]

    def test_summary_mentions_buffers(self):
        rep = analyze("""
            def main(mpi, win):
                z = mpi.alloc("zeta", 4)
                win.put(z, target=1)
        """)
        assert "zeta" in rep.summary()


class TestRealApps:
    def test_emulate_module(self):
        from repro.apps import emulate
        from repro.stanalyzer import analyze_module
        rep = analyze_module(emulate)
        assert {"page", "out", "src"} <= rep.buffer_names

    def test_lu_excludes_local_block(self):
        from repro.apps import lu
        from repro.stanalyzer import analyze_module
        rep = analyze_module(lu)
        assert {"pivot", "row_buf"} <= rep.buffer_names
        assert "a" not in rep.buffer_names  # never an RMA argument
