"""Edge-case unit tests for repro.tools: empty and single-rank trace sets.

Unlike test_tools.py, which drives the tools with traces produced by full
profiled runs, these tests build trace sets by hand via TraceWriter so the
degenerate shapes — header-only files, one rank, mismatched rank counts —
are exercised directly.
"""

import os

import pytest

from repro.profiler.events import CallEvent, MemEvent
from repro.profiler.tracer import TraceSet, TraceWriter
from repro.tools import compute_stats, diff_traces, filter_traces
from repro.util.errors import AnalysisError
from repro.util.location import SourceLocation

LOC = SourceLocation("app.py", 10, "main")


def write_trace_set(directory, events_by_rank, app="hand"):
    """Materialize a trace set from {rank: [events]} (possibly empty lists)."""
    nranks = len(events_by_rank)
    os.makedirs(str(directory), exist_ok=True)
    for rank in range(nranks):
        writer = TraceWriter(TraceSet.rank_path(str(directory), rank),
                             rank, nranks, app=app)
        for event in events_by_rank[rank]:
            writer.write(event)
        writer.close()
    return TraceSet(str(directory))


def empty_set(directory, nranks):
    return write_trace_set(directory, {r: [] for r in range(nranks)})


def call(rank, seq, fn, **args):
    return CallEvent(rank=rank, seq=seq, fn=fn, args=args, loc=LOC)


def mem(rank, seq, access, var="buf", size=8, addr=0):
    return MemEvent(rank=rank, seq=seq, access=access, addr=addr,
                    size=size, var=var, loc=LOC)


class TestStatsEdge:
    def test_empty_trace_set(self, tmp_path):
        stats = compute_stats(empty_set(tmp_path, 2))
        assert stats.nranks == 2
        assert stats.total_events == 0
        assert stats.total_calls == 0
        assert stats.total_mems == 0
        assert stats.hot_statements == []
        assert stats.category_mix() == {}
        assert stats.mems_per_rank() == 0.0

    def test_empty_format_does_not_crash(self, tmp_path):
        text = compute_stats(empty_set(tmp_path, 1)).format()
        assert "1 ranks, 0 events" in text
        assert "hottest statements" not in text

    def test_single_rank(self, tmp_path):
        traces = write_trace_set(tmp_path, {0: [
            call(0, 0, "Barrier"),
            mem(0, 1, "load", size=16),
            mem(0, 2, "store", size=4),
        ]})
        stats = compute_stats(traces)
        assert stats.nranks == 1
        assert stats.total_calls == 1
        assert stats.total_mems == 2
        rank0 = stats.per_rank[0]
        assert rank0.loads == 1 and rank0.load_bytes == 16
        assert rank0.stores == 1 and rank0.store_bytes == 4
        assert stats.calls_per_rank() == 1.0
        assert stats.category_mix() == {"sync": 1}

    def test_unknown_call_lands_in_other(self, tmp_path):
        traces = write_trace_set(tmp_path, {0: [
            call(0, 0, "Totally_made_up"),
        ]})
        stats = compute_stats(traces)
        assert stats.per_rank[0].by_category["other"] == 1

    def test_rma_bytes_unknown_dtype_is_zero(self, tmp_path):
        traces = write_trace_set(tmp_path, {0: [
            call(0, 0, "Put", origin_count=4, origin_dtype=-999),
        ]})
        assert compute_stats(traces).per_rank[0].rma_bytes == 0


class TestDiffEdge:
    def test_empty_vs_empty_identical(self, tmp_path):
        left = empty_set(tmp_path / "l", 2)
        right = empty_set(tmp_path / "r", 2)
        diff = diff_traces(left, right)
        assert diff.identical
        assert diff.divergences == []
        assert diff.format() == "traces are call-stream identical"

    def test_empty_vs_nonempty(self, tmp_path):
        left = empty_set(tmp_path / "l", 1)
        right = write_trace_set(tmp_path / "r",
                                {0: [call(0, 0, "Barrier")]})
        diff = diff_traces(left, right)
        assert not diff.identical
        div, = diff.divergences
        assert div.rank == 0 and div.position == 0
        assert div.left is None and div.right == "Barrier"
        assert diff.count_deltas[0]["calls"] == 1
        assert diff.fn_only_right == {"Barrier": 1}

    def test_single_rank_arg_divergence(self, tmp_path):
        left = write_trace_set(tmp_path / "l", {0: [
            call(0, 0, "Barrier"), call(0, 1, "Put", target=1),
        ]})
        right = write_trace_set(tmp_path / "r", {0: [
            call(0, 0, "Barrier"), call(0, 1, "Put", target=2),
        ]})
        diff = diff_traces(left, right)
        assert not diff.identical
        div, = diff.divergences
        assert div.position == 1
        assert "Put" in div.left and "Put" in div.right

    def test_mem_only_delta_without_call_divergence(self, tmp_path):
        left = write_trace_set(tmp_path / "l", {0: [
            call(0, 0, "Barrier"),
        ]})
        right = write_trace_set(tmp_path / "r", {0: [
            call(0, 0, "Barrier"), mem(0, 1, "load"),
        ]})
        diff = diff_traces(left, right)
        assert not diff.identical
        assert diff.divergences == []  # call streams align
        assert diff.count_deltas[0] == {"calls": 0, "loads": 1,
                                        "stores": 0}

    def test_rank_count_mismatch_raises(self, tmp_path):
        left = empty_set(tmp_path / "l", 1)
        right = empty_set(tmp_path / "r", 2)
        with pytest.raises(AnalysisError):
            diff_traces(left, right)


class TestFilterEdge:
    def test_filter_empty_set_yields_valid_empty_set(self, tmp_path):
        traces = empty_set(tmp_path / "src", 2)
        filtered = filter_traces(traces, str(tmp_path / "out"))
        assert filtered.nranks == 2
        counts = filtered.event_counts()
        assert counts["call"] == 0 and counts["mem"] == 0
        # still diffable and statable
        assert diff_traces(traces, filtered).identical
        assert compute_stats(filtered).total_events == 0

    def test_single_rank_roundtrip_preserves_events(self, tmp_path):
        traces = write_trace_set(tmp_path / "src", {0: [
            call(0, 0, "Win_fence", win=0),
            mem(0, 1, "store", var="x"),
            mem(0, 2, "load", var="y"),
        ]})
        filtered = filter_traces(traces, str(tmp_path / "out"))
        assert diff_traces(traces, filtered).identical
        events = filtered.events(0)
        assert [e.seq for e in events] == [0, 1, 2]
        assert filtered.reader(0).header.app == "hand"

    def test_drop_everything_with_predicate(self, tmp_path):
        traces = write_trace_set(tmp_path / "src", {0: [
            call(0, 0, "Barrier"), mem(0, 1, "load"),
        ]})
        filtered = filter_traces(traces, str(tmp_path / "out"),
                                 predicate=lambda rank, event: False)
        counts = filtered.event_counts()
        assert counts["call"] == 0 and counts["mem"] == 0

    def test_keep_vars_on_single_rank(self, tmp_path):
        traces = write_trace_set(tmp_path / "src", {0: [
            call(0, 0, "Barrier"),
            mem(0, 1, "load", var="keep"),
            mem(0, 2, "store", var="drop"),
        ]})
        filtered = filter_traces(traces, str(tmp_path / "out"),
                                 keep_vars=["keep"])
        events = filtered.events(0)
        assert len(events) == 2  # the call survives, one mem dropped
        assert {e.var for e in events if isinstance(e, MemEvent)} == \
            {"keep"}

    def test_seq_range_half_open(self, tmp_path):
        traces = write_trace_set(tmp_path / "src", {0: [
            mem(0, 0, "load"), mem(0, 1, "load"), mem(0, 2, "load"),
        ]})
        filtered = filter_traces(traces, str(tmp_path / "out"),
                                 seq_range=(1, 2))
        assert [e.seq for e in filtered.events(0)] == [1]
