"""Global-Arrays layer tests: semantics, atomicity, and checkability."""

import numpy as np
import pytest

from repro.core import check_app
from repro.ga import GlobalArray
from repro.simmpi import run_app
from repro.util.errors import SimMPIError


class TestDistribution:
    def test_blocks_partition_range(self):
        def app(mpi):
            ga = GlobalArray.create(mpi, "g", 23)
            spans = [ga.distribution(r) for r in range(mpi.size)]
            ga.destroy()
            return spans

        spans = run_app(app, nranks=5)[0]
        covered = [i for lo, hi in spans for i in range(lo, hi)]
        assert covered == list(range(23))

    def test_owner_consistent(self):
        def app(mpi):
            ga = GlobalArray.create(mpi, "g", 17)
            owners = [ga.owner_of(i) for i in range(17)]
            ga.destroy()
            return owners

        owners = run_app(app, nranks=4)[0]
        for i, owner in enumerate(owners):
            assert owners == sorted(owners)  # contiguous blocks

    def test_too_small_rejected(self):
        def app(mpi):
            GlobalArray.create(mpi, "g", 2)

        with pytest.raises(SimMPIError):
            run_app(app, nranks=4)


class TestSectionOps:
    def test_put_get_roundtrip_across_owners(self):
        def app(mpi):
            ga = GlobalArray.create(mpi, "g", 16)
            if mpi.rank == 0:
                ga.put(3, 13, np.arange(10, dtype=float))
            ga.sync()
            section = ga.get(0, 16)
            ga.destroy()
            return section.tolist()

        results = run_app(app, nranks=4, delivery="lazy")
        expected = [0.0] * 3 + list(map(float, range(10))) + [0.0] * 3
        assert all(r == expected for r in results)

    def test_concurrent_accumulate(self):
        def app(mpi):
            ga = GlobalArray.create(mpi, "g", 8)
            ga.acc(0, 8, np.ones(8))
            ga.sync()
            total = ga.get(0, 8)
            ga.destroy()
            return total.tolist()

        results = run_app(app, nranks=4, delivery="random", seed=1)
        assert results[0] == [4.0] * 8

    def test_fill_and_to_numpy(self):
        def app(mpi):
            ga = GlobalArray.create(mpi, "g", 10)
            ga.fill(2.5)
            full = ga.to_numpy()
            ga.destroy()
            return full.tolist()

        assert run_app(app, nranks=3)[1] == [2.5] * 10

    def test_out_of_range_section(self):
        def app(mpi):
            ga = GlobalArray.create(mpi, "g", 8)
            ga.get(4, 9)

        with pytest.raises(IndexError):
            run_app(app, nranks=2)

    def test_use_after_destroy(self):
        def app(mpi):
            ga = GlobalArray.create(mpi, "g", 8)
            ga.destroy()
            ga.get(0, 4)

        with pytest.raises(SimMPIError, match="destroyed"):
            run_app(app, nranks=2)


class TestReadInc:
    def test_atomic_counter(self):
        def app(mpi):
            ga = GlobalArray.create(mpi, "counter", mpi.size,
                                    datatype="INT")
            tickets = [ga.read_inc(0) for _ in range(3)]
            ga.sync()
            final = ga.get(0, 1)[0]
            ga.destroy()
            return tickets, int(final)

        results = run_app(app, nranks=4, delivery="random", seed=5)
        all_tickets = sorted(t for tickets, _f in results for t in tickets)
        assert all_tickets == list(range(12))  # atomic, no duplicates
        assert results[0][1] == 12

    def test_requires_integer_array(self):
        def app(mpi):
            ga = GlobalArray.create(mpi, "g", 8)  # DOUBLE
            ga.read_inc(0)

        with pytest.raises(SimMPIError, match="integer"):
            run_app(app, nranks=2)


class TestCheckability:
    def test_clean_ga_program_quiet(self):
        def app(mpi):
            ga = GlobalArray.create(mpi, "g", 4 * mpi.size)
            lo, hi = ga.distribution()
            ga.put(lo, hi, np.full(hi - lo, float(mpi.rank)))
            ga.sync()
            other = (mpi.rank + 1) % mpi.size
            olo, ohi = ga.distribution(other)
            _ = ga.get(olo, ohi)
            ga.sync()
            ga.acc(0, 4, np.ones(4))
            ga.destroy()

        report = check_app(app, nranks=3, delivery="random")
        assert not report.findings, report.format()

    def test_unsynchronized_puts_flagged(self):
        def app(mpi):
            ga = GlobalArray.create(mpi, "g", 8)
            ga.put(0, 4, np.ones(4))  # every rank, same section, no sync
            ga.sync()
            ga.destroy()

        report = check_app(app, nranks=3, delivery="random")
        assert report.has_errors

    def test_local_access_race_flagged(self):
        """GA's classic misuse: touching local() while a remote section
        operation may be in flight (the paper's Figure 2d through the GA
        lens)."""
        def app(mpi):
            ga = GlobalArray.create(mpi, "g", 8)
            if mpi.rank == 1:
                ga.put(0, 4, np.ones(4))  # lands in rank 0's block
            elif mpi.rank == 0:
                ga.local()[0] = 7.0       # unsynchronized local store
            ga.sync()
            ga.destroy()

        report = check_app(app, nranks=2, delivery="random")
        assert report.has_errors

    def test_local_access_after_sync_clean(self):
        def app(mpi):
            ga = GlobalArray.create(mpi, "g", 8)
            if mpi.rank == 1:
                ga.put(0, 4, np.ones(4))
            ga.sync()
            if mpi.rank == 0:
                ga.local()[0] = 7.0       # ordered by GA_Sync
            ga.sync()
            ga.destroy()

        report = check_app(app, nranks=2, delivery="random")
        assert not report.findings
