"""CLI tests (mc-checker ...)."""

import pytest

from repro.cli import main


class TestStaticCommands:
    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "NONOV" in out and "ERROR" in out

    def test_apps_listing(self, capsys):
        assert main(["apps"]) == 0
        out = capsys.readouterr().out
        assert "emulate" in out and "LU" in out

    def test_stanalyze_syntax_error(self, tmp_path, capsys):
        src = tmp_path / "broken.py"
        src.write_text("def main(:\n")
        assert main(["stanalyze", str(src)]) == 2
        assert "does not parse" in capsys.readouterr().out

    def test_stanalyze(self, tmp_path, capsys):
        src = tmp_path / "app.py"
        src.write_text(
            "def main(mpi, win):\n"
            "    x = mpi.alloc('x', 4)\n"
            "    win.put(x, target=1)\n")
        assert main(["stanalyze", str(src)]) == 0
        assert "x" in capsys.readouterr().out


class TestRunCheck:
    def test_run_writes_traces(self, tmp_path, capsys):
        assert main(["run", "emulate", "--ranks", "2",
                     "--trace-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "MPI calls" in out
        assert (tmp_path / "trace.0.log").exists()

    def test_check_finds_bug(self, tmp_path, capsys):
        main(["run", "emulate", "--ranks", "2",
              "--trace-dir", str(tmp_path)])
        capsys.readouterr()
        rc = main(["check", str(tmp_path)])
        out = capsys.readouterr().out
        assert rc == 1
        assert "ERROR" in out

    def test_run_check_fixed_clean(self, tmp_path, capsys):
        rc = main(["run-check", "emulate", "--ranks", "2", "--fixed",
                   "--trace-dir", str(tmp_path)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "0 error(s)" in out

    def test_param_override(self, tmp_path, capsys):
        rc = main(["run-check", "jacobi", "--ranks", "2",
                   "--param", "iterations=1", "--param", "interior=4",
                   "--trace-dir", str(tmp_path)])
        assert rc == 1  # still buggy by default

    def test_dotted_path_app(self, tmp_path, capsys):
        rc = main(["run-check", "repro.apps.lu:lu", "--ranks", "2",
                   "--param", "n=10", "--trace-dir", str(tmp_path)])
        assert rc == 0

    def test_unknown_app_exits(self):
        with pytest.raises(SystemExit):
            main(["run", "no-such-app"])

    def test_naive_inter_flag(self, tmp_path, capsys):
        main(["run", "emulate", "--ranks", "2",
              "--trace-dir", str(tmp_path)])
        capsys.readouterr()
        assert main(["check", str(tmp_path), "--naive-inter"]) == 1

    def test_streaming_flag(self, tmp_path, capsys):
        main(["run", "emulate", "--ranks", "2",
              "--trace-dir", str(tmp_path)])
        capsys.readouterr()
        rc = main(["check", str(tmp_path), "--streaming"])
        out = capsys.readouterr().out
        assert rc == 1
        assert "streaming" in out and "peak buffered" in out

    def test_stats_command(self, tmp_path, capsys):
        main(["run", "LU", "--ranks", "2", "--param", "n=10",
              "--trace-dir", str(tmp_path)])
        capsys.readouterr()
        assert main(["stats", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "2 ranks" in out and "hottest statements" in out

    def test_diff_command(self, tmp_path, capsys):
        for sub in ("a", "b"):
            main(["run", "LU", "--ranks", "2", "--param", "n=10",
                  "--delivery", "eager",
                  "--trace-dir", str(tmp_path / sub)])
        capsys.readouterr()
        rc = main(["diff", str(tmp_path / "a"), str(tmp_path / "b")])
        assert rc == 0
        assert "identical" in capsys.readouterr().out

    def test_minimize_command(self, tmp_path, capsys):
        main(["run", "jacobi", "--ranks", "3",
              "--trace-dir", str(tmp_path / "t")])
        capsys.readouterr()
        rc = main(["minimize", str(tmp_path / "t"),
                   str(tmp_path / "min")])
        out = capsys.readouterr().out
        assert rc == 0
        assert "reduction" in out and "minimized traces:" in out

    def test_minimize_clean_trace(self, tmp_path, capsys):
        main(["run", "LU", "--ranks", "2", "--param", "n=10",
              "--trace-dir", str(tmp_path / "t")])
        capsys.readouterr()
        assert main(["minimize", str(tmp_path / "t"),
                     str(tmp_path / "min")]) == 2

    def test_json_output(self, tmp_path, capsys):
        import json as json_mod
        main(["run", "emulate", "--ranks", "2",
              "--trace-dir", str(tmp_path)])
        capsys.readouterr()
        rc = main(["check", str(tmp_path), "--json"])
        payload = json_mod.loads(capsys.readouterr().out)
        assert rc == 1
        assert payload["errors"]
        first = payload["errors"][0]
        assert {"kind", "severity", "rule", "a", "b", "suggestion",
                "overlap_bytes"} <= set(first)
        assert first["a"]["line"] > 0
        assert payload["stats"]["nranks"] == 2

    def test_dag_ascii_and_dot(self, tmp_path, capsys):
        main(["run", "emulate", "--ranks", "2",
              "--trace-dir", str(tmp_path)])
        capsys.readouterr()
        assert main(["dag", str(tmp_path)]) == 0
        ascii_out = capsys.readouterr().out
        assert "Win_create" in ascii_out
        assert main(["dag", str(tmp_path), "--format", "dot"]) == 0
        dot_out = capsys.readouterr().out
        assert dot_out.startswith("digraph")
        assert "cluster_rank0" in dot_out
        assert dot_out.rstrip().endswith("}")

    def test_memory_model_flag(self, tmp_path, capsys):
        main(["run", "repro.apps.lu:lu", "--ranks", "2",
              "--param", "n=10", "--trace-dir", str(tmp_path)])
        capsys.readouterr()
        assert main(["check", str(tmp_path),
                     "--memory-model", "unified"]) == 0


class TestFlightRecorder:
    """run ledger + history/report verbs, end to end through main()."""

    def test_check_appends_to_ledger(self, tmp_path, capsys,
                                     _hermetic_ledger):
        main(["run", "emulate", "--ranks", "2",
              "--trace-dir", str(tmp_path)])
        assert main(["check", str(tmp_path)]) == 1
        capsys.readouterr()
        from repro.obs.ledger import RunLedger
        entries = RunLedger().entries()
        assert len(entries) == 1
        entry = entries[0]
        assert entry.command.startswith("mc-checker check")
        assert entry.findings["errors"] >= 1
        assert entry.findings["details"][0]["provenance"]

    def test_no_ledger_opts_out(self, tmp_path, capsys, _hermetic_ledger):
        main(["run", "emulate", "--ranks", "2",
              "--trace-dir", str(tmp_path)])
        main(["check", str(tmp_path), "--no-ledger"])
        capsys.readouterr()
        from repro.obs.ledger import RunLedger
        assert RunLedger().entries() == []

    def test_history_and_report_e2e(self, tmp_path, capsys):
        assert main(["run-check", "emulate", "--ranks", "2",
                     "--trace-dir", str(tmp_path / "t")]) == 1
        capsys.readouterr()
        assert main(["history"]) == 0
        history = capsys.readouterr().out
        assert "emulate" in history

        assert main(["report", "--last"]) == 0
        rendered = capsys.readouterr().out
        assert "run " in rendered and "phases:" in rendered

        html_out = tmp_path / "dash.html"
        assert main(["report", "--last", "--html", str(html_out)]) == 0
        capsys.readouterr()
        html_doc = html_out.read_text()
        assert html_doc.startswith("<!doctype html>")
        assert "Candidate-pair funnel" in html_doc

    def test_report_compare_between_runs(self, tmp_path, capsys):
        main(["run", "emulate", "--ranks", "2",
              "--trace-dir", str(tmp_path)])
        main(["check", str(tmp_path)])
        main(["check", str(tmp_path)])
        capsys.readouterr()
        from repro.obs.ledger import RunLedger
        first, second = [e.run_id for e in RunLedger().entries()]
        rc = main(["report", second, "--compare", first,
                   "--tolerance", "1000"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "compare" in out and first in out

    def test_report_empty_ledger(self, capsys):
        assert main(["report", "--last"]) == 2
        assert "no matching run" in capsys.readouterr().out

    def test_json_output_stays_pure(self, tmp_path, capsys):
        import json as json_mod
        main(["run", "emulate", "--ranks", "2",
              "--trace-dir", str(tmp_path)])
        capsys.readouterr()
        main(["check", str(tmp_path), "--json"])
        payload = json_mod.loads(capsys.readouterr().out)
        assert payload["errors"]
        assert payload["errors"][0]["provenance"]

    def test_case_insensitive_app_names(self, tmp_path, capsys):
        rc = main(["run-check", "lu", "--ranks", "2", "--param", "n=16",
                   "--trace-dir", str(tmp_path), "--no-ledger"])
        capsys.readouterr()
        assert rc == 0

    def test_stats_json_includes_footer_counts(self, tmp_path, capsys):
        import json as json_mod
        main(["run", "emulate", "--ranks", "2", "--trace-format",
              "binary", "--trace-dir", str(tmp_path)])
        capsys.readouterr()
        assert main(["stats", str(tmp_path), "--json"]) == 0
        payload = json_mod.loads(capsys.readouterr().out)
        assert payload["nranks"] == 2
        for rank in payload["per_rank"]:
            assert rank["format"] == "binary"
            assert rank["footer_counts"]["call"] == rank["calls"]
