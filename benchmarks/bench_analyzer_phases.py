"""Supplementary — DN-Analyzer phase breakdown (section VI: the offline
analyzer ran on a workstation; this records where its time goes on a
representative trace and benchmarks the full pipeline)."""

import pytest

from repro.apps.lu import lu
from repro.core.checker import check_traces
from repro.profiler.session import profile_run


@pytest.fixture(scope="module")
def lu_traces(scale):
    run = profile_run(lu, min(8, scale["fig8_ranks"]),
                      params=dict(n=scale["lu_n"]), delivery="eager")
    return run.traces


def test_full_pipeline(lu_traces, record, benchmark):
    report = benchmark(lambda: check_traces(lu_traces))
    stats = report.stats
    record("analyzer_phases",
           f"events={stats.events} ops={stats.rma_ops} "
           f"locals={stats.local_accesses} matches={stats.sync_matches} "
           f"regions={stats.regions}")
    for phase, seconds in sorted(stats.phase_seconds.items(),
                                 key=lambda kv: -kv[1]):
        record("analyzer_phases",
               f"  {phase:10s} {seconds * 1000:8.1f} ms "
               f"({100 * seconds / stats.total_seconds:4.1f}%)")
    assert not report.findings  # LU is race-free
