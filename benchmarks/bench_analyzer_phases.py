"""Supplementary — DN-Analyzer phase breakdown (section VI: the offline
analyzer ran on a workstation; this records where its time goes on a
representative trace and benchmarks the full pipeline).

Phases are reported in two groups mirroring the engine's two lanes:

* **control plane** — preprocess + matching + clocks + epochs (+ the
  noise-level regions pass): the call-stream side the columnar
  :class:`~repro.core.calltable.CallTable` pipeline accelerates;
* **data plane** — model + intra + inter: the load/store side the sweep
  engine accelerates.

``bench_control_plane.py`` compares the two control-plane
implementations against each other; this file records where one
end-to-end run spends its time, split the same way, so the two payloads
read side by side."""

import pytest

from repro.apps.lu import lu
from repro.core.checker import CONTROL_PHASES, check_traces
from repro.profiler.session import profile_run

#: the data-plane phase group (regions is grouped with the control side:
#: it consumes sync matches, not memory events)
DATA_PHASES = ("model", "intra", "inter")


def split_phase_seconds(phase_seconds):
    """``(control_seconds, data_seconds)`` of one run's phase timings."""
    control = sum(phase_seconds.get(p, 0.0)
                  for p in CONTROL_PHASES + ("regions",))
    data = sum(phase_seconds.get(p, 0.0) for p in DATA_PHASES)
    return control, data


@pytest.fixture(scope="module")
def lu_traces(scale):
    run = profile_run(lu, min(8, scale["fig8_ranks"]),
                      params=dict(n=scale["lu_n"]), delivery="eager")
    return run.traces


def test_full_pipeline(lu_traces, record, benchmark):
    report = benchmark(lambda: check_traces(lu_traces))
    stats = report.stats
    record("analyzer_phases",
           f"events={stats.events} ops={stats.rma_ops} "
           f"locals={stats.local_accesses} matches={stats.sync_matches} "
           f"regions={stats.regions}")
    control, data = split_phase_seconds(stats.phase_seconds)
    record("analyzer_phases",
           f"control plane (preprocess+matching+clocks+epochs+regions): "
           f"{control * 1000:8.1f} ms "
           f"({100 * control / stats.total_seconds:4.1f}%)")
    record("analyzer_phases",
           f"data plane (model+intra+inter):                            "
           f"{data * 1000:8.1f} ms "
           f"({100 * data / stats.total_seconds:4.1f}%)")
    for phase, seconds in sorted(stats.phase_seconds.items(),
                                 key=lambda kv: -kv[1]):
        lane = ("data" if phase in DATA_PHASES else "control")
        record("analyzer_phases",
               f"  {phase:10s} {seconds * 1000:8.1f} ms "
               f"({100 * seconds / stats.total_seconds:4.1f}%) [{lane}]")
    # the two lanes partition the pipeline: nothing is double-counted
    # and nothing is dropped
    assert control + data == pytest.approx(stats.total_seconds)
    assert not report.findings  # LU is race-free
