"""Perf harness for the columnar control plane.

Measures the control-plane phase group (``preprocess + matching +
clocks + epochs``) under ``MCCHECKER_CONTROL_PLANE=object`` vs
``columnar`` over a sync-dense fence workload (heat2d runs two fences
per step, so its call stream is almost pure synchronization), measures
the end-to-end wall clock on the standard 16-rank LU sweep run, verifies
the reports are byte-identical between planes across every analysis mode
(serial, ``jobs=2``, streaming, incremental), and writes a
machine-readable ``BENCH_control_plane.json``.

Two entry points:

* ``python benchmarks/bench_control_plane.py`` — the full
  configuration; writes ``BENCH_control_plane.json`` at the repo root.
* ``python benchmarks/bench_control_plane.py --smoke`` — a small
  configuration for CI; same identity/differential gates, artifact under
  ``benchmarks/results/`` so a quick run never overwrites the committed
  full-size result.

The speedup gates (3x on the control group, 1.3x end-to-end) apply only
to the **full** configuration: the smoke workloads are small enough that
fixed vectorization overhead dominates, so smoke runs record the ratios
without gating on them.
"""

import argparse
import contextlib
import json
import os
import shutil
import statistics
import sys
import tempfile

from repro.apps.heat2d import heat2d
from repro.apps.lu import lu
from repro.apps.registry import BUG_CASES, EXTRA_CASES
from repro.core.checker import CONTROL_PHASES, check_traces
from repro.core.calltable import CONTROL_PLANE_ENV
from repro.core.config import CheckConfig
from repro.profiler.session import profile_run

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
RESULTS_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                           "results")
DEFAULT_OUT = os.path.join(REPO_ROOT, "BENCH_control_plane.json")
SMOKE_OUT = os.path.join(RESULTS_DIR, "BENCH_control_plane_smoke.json")

#: required speedup on the control-plane phase group (sync-dense heat2d)
GROUP_GATE = 3.0
#: required end-to-end speedup on the standard 16-rank LU sweep run
E2E_GATE = 1.3
PLANES = ("object", "columnar")
RANKS_CAP = 8

CONFIGS = {
    "full": dict(
        heat2d=dict(nranks=8, rows=64, cols=16, steps=400),
        lu=dict(nranks=16, n=192),
        reps=3),
    "smoke": dict(
        heat2d=dict(nranks=4, rows=16, cols=8, steps=40),
        lu=dict(nranks=4, n=48),
        reps=1),
}


@contextlib.contextmanager
def plane_env(plane):
    """Pin ``MCCHECKER_CONTROL_PLANE`` for the duration of a block."""
    prior = os.environ.get(CONTROL_PLANE_ENV)
    os.environ[CONTROL_PLANE_ENV] = plane
    try:
        yield
    finally:
        if prior is None:
            os.environ.pop(CONTROL_PLANE_ENV, None)
        else:
            os.environ[CONTROL_PLANE_ENV] = prior


def canonical(report):
    """Byte-comparable report form, modulo wall-clock timings."""
    payload = report.to_dict()
    payload["stats"].pop("phase_seconds")
    return json.dumps(payload, sort_keys=True)


def control_seconds(report):
    return sum(report.stats.phase_seconds.get(p, 0.0)
               for p in CONTROL_PHASES)


def measure(traces, plane, reps):
    """Median (control-group seconds, total seconds) over ``reps``
    serial runs, with the report of the group-median run."""
    samples = []
    with plane_env(plane):
        for _ in range(reps):
            report = check_traces(traces)
            samples.append((control_seconds(report),
                            report.stats.total_seconds, report))
    samples.sort(key=lambda s: s[0])
    group = statistics.median(s[0] for s in samples)
    total = statistics.median(s[1] for s in samples)
    return group, total, samples[len(samples) // 2][2]


def run_differential():
    """Every registered bug case x analysis mode (serial / jobs=2 /
    streaming / incremental): the object and columnar planes must
    produce byte-identical reports.  Returns (combinations, mismatches).
    """
    mismatches = []
    cases = list(BUG_CASES) + list(EXTRA_CASES)
    modes = ("serial", "jobs2", "streaming", "incremental")
    cache_root = tempfile.mkdtemp(prefix="mcc-bench-cp-")
    try:
        for case in cases:
            nranks = min(case.nranks, RANKS_CAP)
            run = profile_run(case.app, nranks, params=case.params(True))
            for mode in modes:
                reports = {}
                for plane in PLANES:
                    if mode == "serial":
                        cfg = CheckConfig()
                    elif mode == "jobs2":
                        cfg = CheckConfig(jobs=2)
                    elif mode == "streaming":
                        cfg = CheckConfig(streaming=True)
                    else:
                        cfg = CheckConfig(incremental=True, cache_dir=(
                            os.path.join(cache_root,
                                         f"{case.name}-{plane}")))
                    with plane_env(plane):
                        reports[plane] = canonical(
                            check_traces(run.traces, cfg))
                if reports["object"] != reports["columnar"]:
                    mismatches.append(f"{case.name}/{mode}")
                    print(f"[bench_cp] FAIL: {case.name} ({mode}) "
                          "reports diverge across control planes",
                          file=sys.stderr)
    finally:
        shutil.rmtree(cache_root, ignore_errors=True)
    return len(cases) * len(modes), mismatches


def run_bench(mode, out_path):
    cfg = CONFIGS[mode]
    reps = cfg["reps"]
    print(f"[bench_cp] mode={mode} heat2d={cfg['heat2d']} "
          f"lu={cfg['lu']} reps={reps}")

    h = cfg["heat2d"]
    heat_run = profile_run(
        heat2d, h["nranks"],
        params=dict(rows=h["rows"], cols=h["cols"], steps=h["steps"]),
        scope="report", delivery="eager", trace_format="binary")
    l = cfg["lu"]
    lu_run = profile_run(lu, l["nranks"], params=dict(n=l["n"]),
                         scope="report", delivery="eager",
                         trace_format="binary")

    planes = {}
    canonicals = {}
    for plane in PLANES:
        group, _htotal, hreport = measure(heat_run.traces, plane, reps)
        _lgroup, total, lreport = measure(lu_run.traces, plane, reps)
        planes[plane] = {
            "control_seconds": round(group, 4),
            "total_seconds": round(total, 4),
            "phase_seconds": {k: round(v, 4) for k, v in
                              hreport.stats.phase_seconds.items()},
            "lu_phase_seconds": {k: round(v, 4) for k, v in
                                 lreport.stats.phase_seconds.items()},
            "findings": len(hreport.findings) + len(lreport.findings),
        }
        canonicals[plane] = (canonical(hreport), canonical(lreport))
        print(f"[bench_cp] {plane}: heat2d "
              f"{'+'.join(CONTROL_PHASES)}={group:.3f}s, "
              f"lu end-to-end={total:.3f}s")

    identical = canonicals["object"] == canonicals["columnar"]
    if not identical:
        print("[bench_cp] FAIL: columnar report diverged from object on "
              "a measured workload", file=sys.stderr)

    group_speedup = (planes["object"]["control_seconds"]
                     / max(planes["columnar"]["control_seconds"], 1e-9))
    e2e_speedup = (planes["object"]["total_seconds"]
                   / max(planes["columnar"]["total_seconds"], 1e-9))
    applies = mode == "full"
    gates = {
        "control_group": {
            "required_speedup": GROUP_GATE, "applies": applies,
            "passed": group_speedup >= GROUP_GATE if applies else None},
        "end_to_end": {
            "required_speedup": E2E_GATE, "applies": applies,
            "passed": e2e_speedup >= E2E_GATE if applies else None},
    }
    if not applies:
        for gate in gates.values():
            gate["skipped_because"] = ("smoke workload too small to "
                                       "exercise the hot path")
    print(f"[bench_cp] control group speedup {group_speedup:.2f}x "
          f"(gate {GROUP_GATE}x, "
          f"{'applies' if applies else 'skipped in ' + mode + ' mode'})")
    print(f"[bench_cp] end-to-end speedup {e2e_speedup:.2f}x "
          f"(gate {E2E_GATE}x, "
          f"{'applies' if applies else 'skipped in ' + mode + ' mode'})")

    checked, mismatches = run_differential()
    print(f"[bench_cp] differential: {checked} case/mode combinations, "
          f"{len(mismatches)} mismatch(es)")

    payload = {
        "benchmark": "control_plane",
        "mode": mode,
        "workloads": {
            "heat2d": dict(cfg["heat2d"], trace_format="binary",
                           role="control-group gate (sync-dense)"),
            "lu": dict(cfg["lu"], trace_format="binary",
                       role="end-to-end gate"),
        },
        "reps": reps,
        "machine": {"cpu_count": os.cpu_count() or 1},
        "control_phases": list(CONTROL_PHASES),
        "planes": planes,
        "speedup": {"control_group": round(group_speedup, 3),
                    "end_to_end": round(e2e_speedup, 3)},
        "gates": gates,
        "identical_reports": identical,
        "differential": {"combinations": checked,
                         "mismatches": mismatches},
    }
    os.makedirs(os.path.dirname(out_path), exist_ok=True)
    with open(out_path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    print(f"[bench_cp] wrote {out_path}")

    ok = (identical and not mismatches
          and all(g["passed"] is not False for g in gates.values()))
    return payload, ok


def main(argv=None):
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--smoke", action="store_true",
                    help="small CI configuration (artifact goes to "
                         "benchmarks/results/, repo-root JSON untouched)")
    ap.add_argument("--out", default=None,
                    help="artifact path (default: BENCH_control_plane."
                         "json at the repo root, or benchmarks/results/ "
                         "with --smoke)")
    args = ap.parse_args(argv)
    mode = "smoke" if args.smoke else "full"
    out_path = args.out or (SMOKE_OUT if args.smoke else DEFAULT_OUT)
    _payload, ok = run_bench(mode, out_path)
    return 0 if ok else 1


def test_control_plane_smoke(record, benchmark):
    """pytest entry point: the smoke configuration as a benchmark-suite
    row (``pytest benchmarks/bench_control_plane.py``)."""
    payload, ok = benchmark.pedantic(
        lambda: run_bench("smoke", SMOKE_OUT), rounds=1, iterations=1)
    assert ok, "control planes diverged (or a speedup gate failed)"
    for plane, row in payload["planes"].items():
        record("control_plane",
               f"plane={plane:<9s} "
               f"control={row['control_seconds']:7.3f}s "
               f"e2e={row['total_seconds']:7.3f}s "
               f"group_speedup={payload['speedup']['control_group']:5.2f}x",
               plane=plane, control_seconds=row["control_seconds"],
               group_speedup=payload["speedup"]["control_group"])


if __name__ == "__main__":
    sys.exit(main())
