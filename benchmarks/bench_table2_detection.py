"""E2 — Table II: detection effectiveness on the five evaluated bugs.

For every row of the paper's Table II (three real-world defects, two
injected), run MC-Checker on the buggy variant, confirm detection and
root-cause pinpointing, run the fixed variant to confirm no false
positives, and record the row.  Rank counts follow the paper (lockopts at
64 processes) scaled by the benchmark preset.

The timing benchmark measures the full profile+analyze pipeline per case.
"""

import pytest

from repro.apps.registry import BUG_CASES, LOCKOPTS_EXCLUSIVE
from repro.core import check_app

ALL_CASES = list(BUG_CASES) + [LOCKOPTS_EXCLUSIVE]


def ranks_for(case, scale):
    cap = 64 if scale["fig8_ranks"] >= 64 else 8
    return min(case.nranks, cap)


@pytest.mark.parametrize("case", ALL_CASES, ids=lambda c: c.name)
def test_detection_row(case, record, scale, benchmark):
    nranks = ranks_for(case, scale)

    buggy = benchmark.pedantic(
        lambda: check_app(case.app, nranks=nranks,
                          params=case.params(True), delivery="random"),
        rounds=1, iterations=1)
    fixed = check_app(case.app, nranks=nranks, params=case.params(False),
                      delivery="random")

    principal = [f for f in buggy.findings
                 if f.severity == case.expected_severity]
    detected = bool(principal)
    root_cause_hit = any({f.a.kind, f.b.kind} <= case.root_cause
                         for f in buggy.findings)
    pinpointed = detected and all(
        side.loc.lineno > 0 for f in principal for side in (f.a, f.b))

    record("table2_detection",
           f"{case.name:20s} procs={nranks:<3d} "
           f"location={case.error_location:17s} "
           f"detected={'yes' if detected else 'NO':3s} "
           f"root-cause={'yes' if root_cause_hit else 'NO':3s} "
           f"severity={case.expected_severity:7s} "
           f"false-positives={len(fixed.findings)} "
           f"symptom={case.failure_symptom}")

    assert detected, f"{case.name}: not detected"
    assert root_cause_hit, f"{case.name}: root cause not pinpointed"
    assert pinpointed
    assert not fixed.findings, f"{case.name}: false positives on fix"
