"""Perf harness for trace *generation* — the producer side of the pipeline.

Measures end-to-end generation throughput (simulate + profile + write,
in events per second) of the 16-rank LU workload through two in-tree
arms:

* **scalar** — ``lu(vectorized=False)`` profiled with ``bulk=False``:
  every access is a Python-level statement that becomes one ``MemEvent``
  object (the reference lane);
* **bulk** — the default zero-object lane: vectorized app accesses
  coalesce into columnar ``append_mem_columns`` records.

The headline gate compares the bulk lane against the **pre-PR
pipeline** (the tree before the bulk-lane/vectorization work), which
paid per-element RMA byte copies, thundering-herd scheduler wakeups,
and per-event object construction: generation must be >= 5x faster.
When the pre-PR commit is reachable the baseline is measured live in a
temporary git worktree; on shallow checkouts (CI) the recorded
measurement is used and its provenance recorded.  The in-tree lane
ratio is reported alongside as a secondary metric — it understates the
win because both arms share the simulation cost the PR also removed.

The harness also runs the suite's first **million-event workload**
(LU n=1500 — the paper's own matrix order) through the whole pipeline:
generation in both lanes (findings must be byte-identical), binary-v2
ingest, the sweep engine, and the incremental cache cold + warm; the
run's flight-record HTML lands under ``benchmarks/results/``.

Two entry points:

* ``python benchmarks/bench_trace_gen.py`` — full configuration;
  artifact at the repo root (``BENCH_trace_gen.json``).
* ``python benchmarks/bench_trace_gen.py --smoke`` — small CI
  configuration: in-tree arms only (no git history needed), the lane
  ratio must stay above a 0.7x floor (bulk must never lose to scalar),
  artifact under ``benchmarks/results/``.
"""

import argparse
import json
import os
import shutil
import statistics
import subprocess
import sys
import tempfile
import time

from repro import obs
from repro.apps.lu import lu
from repro.core.checker import check_traces
from repro.core.config import CheckConfig
from repro.obs.dashboard import render_run_html
from repro.obs.report import build_run_report
from repro.profiler.session import profile_run
from repro.profiler.tracer import FORMAT_BINARY

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
RESULTS_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                           "results")
DEFAULT_OUT = os.path.join(REPO_ROOT, "BENCH_trace_gen.json")
SMOKE_OUT = os.path.join(RESULTS_DIR, "BENCH_trace_gen_smoke.json")
RUN_REPORT_HTML = os.path.join(RESULTS_DIR, "trace_gen_run_report.html")

GENERATION_SPEEDUP_GATE = 5.0
SMOKE_LANE_FLOOR = 0.7

#: last mainline commit before the bulk producer lane landed
PRE_PR_COMMIT = "fcac55c"
#: pre-PR generation seconds on the full workload (16-rank LU n=768,
#: eager delivery, text traces), measured 2026-08-08 at PRE_PR_COMMIT;
#: the fallback baseline when the commit is unreachable (CI checkouts
#: are depth-1)
PRE_PR_RECORDED_SECONDS = 19.89

CONFIGS = {
    # n=768 is the ~295k-mem-event regime of the format bench; n=1500
    # is the paper's LU order and puts ~1.1M load/store events through
    # the million-event pipeline leg
    "full": dict(nranks=16, n=768, reps=3,
                 million_nranks=16, million_n=1500, million_floor=1_000_000),
    "smoke": dict(nranks=4, n=48, reps=1,
                  million_nranks=4, million_n=96, million_floor=0),
}

#: measured in the pre-PR tree: its profile_run knows neither ``bulk``
#: nor ``vectorized``, so the snippet sticks to the era's public surface
_PRE_PR_SNIPPET = """\
import json, sys, tempfile, time
sys.path.insert(0, sys.argv[1])
from repro.apps.lu import lu
from repro.profiler.session import profile_run
nranks, n = int(sys.argv[2]), int(sys.argv[3])
t0 = time.perf_counter()
run = profile_run(lu, nranks, params=dict(n=n), scope="report",
                  delivery="eager", trace_dir=tempfile.mkdtemp())
print(json.dumps({"seconds": time.perf_counter() - t0,
                  "events": run.events_written}))
"""


def canonical(report):
    """Byte-comparable report form, modulo wall-clock timings."""
    payload = report.to_dict()
    payload["stats"].pop("phase_seconds")
    return json.dumps(payload, sort_keys=True)


def generate(nranks, n, *, vectorized, bulk, trace_dir,
             trace_format="text"):
    """One end-to-end generation run; returns (ProfiledRun, seconds)."""
    start = time.perf_counter()
    run = profile_run(lu, nranks,
                      params=dict(n=n, vectorized=vectorized),
                      scope="report", delivery="eager",
                      trace_dir=trace_dir, trace_format=trace_format,
                      bulk=bulk)
    return run, time.perf_counter() - start


def measure_arm(cfg, workdir, label, *, vectorized, bulk):
    """Median end-to-end generation seconds over ``reps`` fresh runs."""
    times = []
    events = 0
    for rep in range(cfg["reps"]):
        trace_dir = os.path.join(workdir, f"{label}-{rep}")
        run, seconds = generate(cfg["nranks"], cfg["n"],
                                vectorized=vectorized, bulk=bulk,
                                trace_dir=trace_dir)
        events = run.events_written
        times.append(seconds)
    seconds = statistics.median(times)
    return {"seconds": round(seconds, 3),
            "events": events,
            "events_per_second": round(events / seconds)}, seconds


def pre_pr_baseline(cfg, events):
    """Generation seconds of the pre-PR tree on the full workload.

    Measured live in a temporary worktree when ``PRE_PR_COMMIT``
    resolves; otherwise the recorded measurement with its provenance.
    """
    recorded = {
        "commit": PRE_PR_COMMIT, "source": "recorded",
        "seconds": PRE_PR_RECORDED_SECONDS,
        "events_per_second": round(events / PRE_PR_RECORDED_SECONDS),
        "measured_on": "2026-08-08",
    }
    probe = subprocess.run(
        ["git", "-C", REPO_ROOT, "rev-parse", "--verify", "--quiet",
         PRE_PR_COMMIT + "^{commit}"],
        capture_output=True, text=True)
    if probe.returncode != 0:
        print(f"[bench_trace_gen] pre-PR commit {PRE_PR_COMMIT} not in "
              "this checkout; using recorded baseline")
        return recorded
    worktree = tempfile.mkdtemp(prefix="bench-trace-gen-prepr-")
    try:
        added = subprocess.run(
            ["git", "-C", REPO_ROOT, "worktree", "add", "--force",
             "--detach", worktree, PRE_PR_COMMIT],
            capture_output=True, text=True)
        if added.returncode != 0:
            print("[bench_trace_gen] worktree add failed; using recorded "
                  f"baseline: {added.stderr.strip()}", file=sys.stderr)
            return recorded
        out = subprocess.run(
            [sys.executable, "-c", _PRE_PR_SNIPPET,
             os.path.join(worktree, "src"),
             str(cfg["nranks"]), str(cfg["n"])],
            capture_output=True, text=True, timeout=1800)
        if out.returncode != 0:
            print("[bench_trace_gen] pre-PR run failed; using recorded "
                  f"baseline: {out.stderr.strip()[-400:]}",
                  file=sys.stderr)
            return recorded
        measured = json.loads(out.stdout)
        return {
            "commit": PRE_PR_COMMIT, "source": "live-worktree",
            "seconds": round(measured["seconds"], 3),
            "events": measured["events"],
            "events_per_second": round(
                measured["events"] / measured["seconds"]),
        }
    finally:
        subprocess.run(["git", "-C", REPO_ROOT, "worktree", "remove",
                        "--force", worktree],
                       capture_output=True, text=True)
        shutil.rmtree(worktree, ignore_errors=True)


def million_pipeline(cfg, workdir):
    """The large-workload leg: generation in both lanes, v2 ingest,
    sweep engine, incremental cache cold + warm, flight-record HTML."""
    nranks, n = cfg["million_nranks"], cfg["million_n"]
    print(f"[bench_trace_gen] large leg: {nranks}-rank LU n={n}")

    bulk_dir = os.path.join(workdir, "large-bulk")
    scalar_dir = os.path.join(workdir, "large-scalar")
    cache_dir = os.path.join(workdir, "large-cache")
    config = CheckConfig(engine="sweep", incremental=True,
                         cache_dir=cache_dir)

    scalar_run, scalar_seconds = generate(
        nranks, n, vectorized=False, bulk=False, trace_dir=scalar_dir,
        trace_format=FORMAT_BINARY)

    rec = obs.configure(enabled=True)
    try:
        bulk_run, bulk_seconds = generate(
            nranks, n, vectorized=True, bulk=True, trace_dir=bulk_dir,
            trace_format=FORMAT_BINARY)

        start = time.perf_counter()
        cold_report = check_traces(bulk_run.traces, config)
        cold_seconds = time.perf_counter() - start
        start = time.perf_counter()
        warm_report = check_traces(bulk_run.traces, config)
        warm_seconds = time.perf_counter() - start

        run_report = build_run_report(
            warm_report, config, traces=bulk_run.traces, app="lu",
            command="benchmarks/bench_trace_gen.py")
    finally:
        obs.reset()

    scalar_report = check_traces(scalar_run.traces, config.replace(
        incremental=False, cache_dir=None))
    identical = (canonical(scalar_report) == canonical(cold_report)
                 and canonical(warm_report) == canonical(cold_report))

    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(RUN_REPORT_HTML, "w", encoding="utf-8") as fh:
        fh.write(render_run_html(run_report))
    print(f"[bench_trace_gen] flight record: {RUN_REPORT_HTML}")

    counts = bulk_run.traces.event_counts()
    events = counts["call"] + counts["mem"]
    shards = run_report.cache.get("shards", {})
    print(f"[bench_trace_gen] large leg: {counts['mem']} mem events, "
          f"bulk gen {bulk_seconds:.2f}s vs scalar {scalar_seconds:.2f}s, "
          f"cold check {cold_seconds:.2f}s, warm {warm_seconds:.2f}s, "
          f"identical={identical}")
    return {
        "nranks": nranks, "n": n,
        "call_events": counts["call"], "mem_events": counts["mem"],
        "bulk_generation_seconds": round(bulk_seconds, 3),
        "scalar_generation_seconds": round(scalar_seconds, 3),
        "bulk_events_per_second": round(events / bulk_seconds),
        "cold_check_seconds": round(cold_seconds, 3),
        "warm_check_seconds": round(warm_seconds, 3),
        "warm_cache_shards": {k: int(v) for k, v in sorted(shards.items())},
        "identical_findings": identical,
        "findings": {"errors": len(cold_report.errors),
                     "warnings": len(cold_report.warnings)},
        "emission": run_report.emission,
        "run_report_html": os.path.relpath(RUN_REPORT_HTML, REPO_ROOT),
    }


def run_bench(mode, out_path):
    cfg = CONFIGS[mode]
    cpus = os.cpu_count() or 1
    print(f"[bench_trace_gen] mode={mode} nranks={cfg['nranks']} "
          f"n={cfg['n']} reps={cfg['reps']} cpus={cpus}")

    workdir = tempfile.mkdtemp(prefix="bench-trace-gen-")
    try:
        scalar, scalar_seconds = measure_arm(
            cfg, workdir, "scalar", vectorized=False, bulk=False)
        bulk, bulk_seconds = measure_arm(
            cfg, workdir, "bulk", vectorized=True, bulk=True)
        assert scalar["events"] == bulk["events"], (
            "lanes emitted different event counts")
        lane_ratio = scalar_seconds / bulk_seconds
        print(f"[bench_trace_gen] scalar {scalar_seconds:.2f}s, bulk "
              f"{bulk_seconds:.2f}s (lane ratio {lane_ratio:.2f}x, "
              f"{bulk['events_per_second']} events/s)")

        if mode == "full":
            baseline = pre_pr_baseline(cfg, bulk["events"])
            speedup = baseline["seconds"] / bulk_seconds
            print(f"[bench_trace_gen] pre-PR baseline "
                  f"({baseline['source']}): {baseline['seconds']:.2f}s "
                  f"-> speedup {speedup:.2f}x")
            speed_gate = {
                "required_speedup": GENERATION_SPEEDUP_GATE,
                "measured_speedup": round(speedup, 2),
                "baseline": baseline,
                "applies": True,
                "passed": speedup >= GENERATION_SPEEDUP_GATE,
            }
            floor_gate = {
                "required_ratio": SMOKE_LANE_FLOOR,
                "measured_ratio": round(lane_ratio, 2),
                "applies": False,
                "passed": None,
                "skipped_because": "full mode gates on the pre-PR "
                                   "baseline instead",
            }
        else:
            baseline = None
            speed_gate = {
                "required_speedup": GENERATION_SPEEDUP_GATE,
                "measured_speedup": None,
                "applies": False,
                "passed": None,
                "skipped_because": "smoke mode cannot reach the pre-PR "
                                   "commit on shallow checkouts",
            }
            floor_gate = {
                "required_ratio": SMOKE_LANE_FLOOR,
                "measured_ratio": round(lane_ratio, 2),
                "applies": True,
                "passed": lane_ratio >= SMOKE_LANE_FLOOR,
            }

        large = million_pipeline(cfg, workdir)
        million_ok = large["mem_events"] >= cfg["million_floor"]
        if not million_ok:
            print(f"[bench_trace_gen] FAIL: large leg produced only "
                  f"{large['mem_events']} mem events "
                  f"(need {cfg['million_floor']})", file=sys.stderr)
        if not large["identical_findings"]:
            print("[bench_trace_gen] FAIL: scalar and bulk lanes "
                  "disagree on findings", file=sys.stderr)
        for name, gate in (("generation-speedup", speed_gate),
                           ("lane-floor", floor_gate)):
            if gate["passed"] is False:
                print(f"[bench_trace_gen] FAIL: {name} gate at "
                      f"{gate.get('measured_speedup') or gate.get('measured_ratio')}",
                      file=sys.stderr)
            elif gate["passed"]:
                print(f"[bench_trace_gen] {name} gate passed")

        payload = {
            "benchmark": "trace_gen",
            "mode": mode,
            "workload": {"app": "lu", "nranks": cfg["nranks"],
                         "n": cfg["n"], "reps": cfg["reps"],
                         "events": bulk["events"]},
            "machine": {"cpu_count": cpus},
            "arms": {"scalar": scalar, "bulk": bulk},
            "lane_ratio_scalar_vs_bulk": round(lane_ratio, 2),
            "generation_speedup_gate": speed_gate,
            "lane_floor_gate": floor_gate,
            "large_workload": large,
        }
        os.makedirs(os.path.dirname(out_path), exist_ok=True)
        with open(out_path, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2)
            fh.write("\n")
        print(f"[bench_trace_gen] wrote {out_path}")

        ok = (large["identical_findings"] and million_ok
              and speed_gate["passed"] is not False
              and floor_gate["passed"] is not False)
        return payload, ok
    finally:
        shutil.rmtree(workdir, ignore_errors=True)


def main(argv=None):
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--smoke", action="store_true",
                    help="small CI configuration (in-tree arms only; "
                         "artifact goes to benchmarks/results/)")
    ap.add_argument("--out", default=None,
                    help="artifact path (default: BENCH_trace_gen.json "
                         "at the repo root, or benchmarks/results/ with "
                         "--smoke)")
    args = ap.parse_args(argv)
    mode = "smoke" if args.smoke else "full"
    out_path = args.out or (SMOKE_OUT if args.smoke else DEFAULT_OUT)
    _payload, ok = run_bench(mode, out_path)
    return 0 if ok else 1


def test_trace_gen_bench_smoke(record, benchmark):
    """pytest entry point: the smoke configuration as a benchmark-suite
    row (``pytest benchmarks/bench_trace_gen.py``)."""
    payload, ok = benchmark.pedantic(
        lambda: run_bench("smoke", SMOKE_OUT), rounds=1, iterations=1)
    assert ok, "producer differential or lane-floor gate failed"
    for arm, row in payload["arms"].items():
        record("trace_gen",
               f"{arm:6s} gen={row['seconds']:7.2f}s "
               f"rate={row['events_per_second']:>9} ev/s",
               arm=arm, **{k: row[k] for k in
                           ("seconds", "events_per_second")})


if __name__ == "__main__":
    sys.exit(main())
