"""E3 — Figure 8: Profiler runtime overhead on five applications.

For each workload (GA Lennard-Jones, GA SCF, GA Boltzmann, SKaMPI, NAS
LU), run natively and under the Profiler (ST-Analyzer-selected
instrumentation, the paper's configuration) and record the normalized
execution time.  The paper reports 24.6%-71.1% overhead (average 45.2%)
at 64 ranks on real hardware; the reproduced artifact is the *shape*:
moderate constant-factor overhead, far from the "hundreds of times" of
full instrumentation (see the E6 ablation).
"""

import pytest

from benchmarks.conftest import median_time
from repro.apps.boltzmann import boltzmann
from repro.apps.lennard_jones import lennard_jones
from repro.apps.lu import lu
from repro.apps.scf import scf
from repro.apps.skampi import skampi
from repro.profiler.session import baseline_run, profile_run

_OVERHEADS = []


def workloads(scale):
    n = scale["fig8_ranks"]
    return [
        ("Lennard-Jones", lennard_jones,
         dict(particles_per_rank=10, steps=2), n),
        ("SCF", scf, dict(basis_per_rank=8, iterations=3), n),
        ("Boltzmann", boltzmann, dict(cells_per_rank=1024, steps=20), n),
        ("SKaMPI", skampi, dict(sizes=(8, 64), repeats=2), n),
        ("LU", lu, dict(n=scale["lu_n"]), n),
    ]


@pytest.mark.parametrize("index", range(5),
                         ids=["lj", "scf", "boltzmann", "skampi", "lu"])
def test_fig8_overhead(index, record, scale, benchmark):
    name, app, params, nranks = workloads(scale)[index]
    reps = scale["reps"]

    native = median_time(
        lambda: baseline_run(app, nranks, params=params, delivery="eager"),
        reps)

    def profiled():
        return profile_run(app, nranks, params=params, scope="report",
                           delivery="eager")

    run = benchmark.pedantic(profiled, rounds=max(reps, 2), iterations=1)
    prof = median_time(lambda: profiled(), reps)
    counts = run.traces.event_counts()

    normalized = prof / native
    overhead_pct = 100.0 * (normalized - 1.0)
    _OVERHEADS.append(overhead_pct)
    record("fig8_overhead",
           f"{name:15s} ranks={nranks:<3d} native={native:7.3f}s "
           f"profiled={prof:7.3f}s normalized={normalized:5.2f}x "
           f"overhead={overhead_pct:6.1f}% "
           f"events(call={counts['call']}, mem={counts['mem']})",
           app=name, ranks=nranks, native_s=native, profiled_s=prof,
           normalized=normalized, overhead_pct=overhead_pct,
           call_events=counts["call"], mem_events=counts["mem"])
    assert normalized >= 0.8  # profiling must not speed things up


def test_fig8_average(record, benchmark):
    assert _OVERHEADS, "per-app measurements must run first"
    avg = benchmark(lambda: sum(_OVERHEADS) / len(_OVERHEADS))
    record("fig8_overhead",
           f"{'AVERAGE':15s} overhead={avg:6.1f}%  "
           f"(paper: 24.6%-71.1%, average 45.2%)",
           average_overhead_pct=avg)
