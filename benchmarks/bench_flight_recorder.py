"""Perf harness for the flight recorder's overhead.

Profiles one LU run into binary traces, then measures the analyzer with
the observability recorder **off** (the NullRecorder default) and **on**
(storing recorder plus a full :func:`repro.obs.report.build_run_report`
distillation per run, i.e. everything ``mc-checker check`` does before
appending to the ledger).  Asserts the reports are byte-identical in
both arms — observation must never change the analysis — and gates the
recorder's overhead at {GATE}% in the full configuration.

Two entry points:

* ``python benchmarks/bench_flight_recorder.py`` — the full
  configuration (16-rank LU); artifact at the repo root.  Gate:
  overhead <= {GATE}%.
* ``python benchmarks/bench_flight_recorder.py --smoke`` — a small CI
  configuration; identity still enforced, the overhead gate is recorded
  but not enforced (tiny runs make percentages noisy), artifact under
  ``benchmarks/results/``.
"""

import argparse
import json
import os
import shutil
import statistics
import sys
import tempfile
import time

from repro import obs
from repro.apps.lu import lu
from repro.core.checker import check_traces
from repro.core.config import CheckConfig
from repro.obs.report import build_run_report
from repro.profiler.session import profile_run
from repro.profiler.tracer import FORMAT_BINARY

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
RESULTS_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                           "results")
DEFAULT_OUT = os.path.join(REPO_ROOT, "BENCH_flight_recorder.json")
SMOKE_OUT = os.path.join(RESULTS_DIR, "BENCH_flight_recorder_smoke.json")

OVERHEAD_GATE_PCT = 5.0

CONFIGS = {
    "full": dict(nranks=16, n=192, reps=3),
    "smoke": dict(nranks=4, n=48, reps=1),
}


def canonical(report):
    """Byte-comparable report form, modulo wall-clock timings."""
    payload = report.to_dict()
    payload["stats"].pop("phase_seconds")
    return json.dumps(payload, sort_keys=True)


def timed_check(traces, config, recorder_on):
    """One analysis run; with the recorder on, also distill the
    RunReport (the work ``mc-checker check`` adds per run)."""
    if recorder_on:
        obs.configure(enabled=True)
    try:
        start = time.perf_counter()
        report = check_traces(traces, config)
        if recorder_on:
            build_run_report(report, config, traces=traces,
                             command="bench", app="lu")
        elapsed = time.perf_counter() - start
    finally:
        obs.reset()
    return report, elapsed


def run_bench(mode, out_path):
    cfg = CONFIGS[mode]
    cpus = os.cpu_count() or 1
    print(f"[bench_flight_recorder] mode={mode} nranks={cfg['nranks']} "
          f"n={cfg['n']} reps={cfg['reps']} cpus={cpus}")

    workdir = tempfile.mkdtemp(prefix="bench-flightrec-")
    try:
        run = profile_run(lu, cfg["nranks"], params=dict(n=cfg["n"]),
                          scope="report", delivery="eager",
                          trace_dir=os.path.join(workdir, "traces"),
                          trace_format=FORMAT_BINARY)
        traces = run.traces
        counts = traces.event_counts()
        print(f"[bench_flight_recorder] workload: {counts['call']} calls, "
              f"{counts['mem']} load/store events")

        config = CheckConfig()
        check_traces(traces, config)  # warmup: imports, mmap, allocator
        off_times, on_times = [], []
        off_canon = on_canon = None
        for rep in range(cfg["reps"]):
            report_off, t_off = timed_check(traces, config, False)
            report_on, t_on = timed_check(traces, config, True)
            off_times.append(t_off)
            on_times.append(t_on)
            off_canon = canonical(report_off)
            on_canon = canonical(report_on)
        off_seconds = statistics.median(off_times)
        on_seconds = statistics.median(on_times)
        identical = off_canon == on_canon
        overhead_pct = (on_seconds - off_seconds) / off_seconds * 100.0
        print(f"[bench_flight_recorder] off: {off_seconds:.3f}s  "
              f"on: {on_seconds:.3f}s  overhead: {overhead_pct:+.2f}%  "
              f"identical={identical}")
        if not identical:
            print("[bench_flight_recorder] FAIL: recorder changed the "
                  "report", file=sys.stderr)

        gate_applies = mode == "full"
        gate = {
            "max_overhead_pct": OVERHEAD_GATE_PCT,
            "measured_overhead_pct": round(overhead_pct, 2),
            "applies": gate_applies,
            "passed": (overhead_pct <= OVERHEAD_GATE_PCT
                       if gate_applies else None),
        }
        if not gate_applies:
            gate["skipped_because"] = (
                "smoke runs are too short for a stable percentage")
        if gate["passed"] is False:
            print(f"[bench_flight_recorder] FAIL: overhead "
                  f"{overhead_pct:.2f}% above {OVERHEAD_GATE_PCT}%",
                  file=sys.stderr)
        elif gate["passed"]:
            print("[bench_flight_recorder] overhead gate passed")

        payload = {
            "benchmark": "flight_recorder",
            "mode": mode,
            "workload": {"app": "lu", "nranks": cfg["nranks"],
                         "n": cfg["n"], "reps": cfg["reps"],
                         "call_events": counts["call"],
                         "mem_events": counts["mem"]},
            "machine": {"cpu_count": cpus},
            "off_seconds": round(off_seconds, 4),
            "on_seconds": round(on_seconds, 4),
            "overhead_pct": round(overhead_pct, 2),
            "identical_reports": identical,
            "overhead_gate": gate,
        }
        os.makedirs(os.path.dirname(out_path), exist_ok=True)
        with open(out_path, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2)
            fh.write("\n")
        print(f"[bench_flight_recorder] wrote {out_path}")

        ok = identical and gate["passed"] is not False
        return payload, ok
    finally:
        shutil.rmtree(workdir, ignore_errors=True)


def main(argv=None):
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--smoke", action="store_true",
                    help="small CI configuration (artifact goes to "
                         "benchmarks/results/, repo-root JSON untouched)")
    ap.add_argument("--out", default=None,
                    help="artifact path (default: "
                         "BENCH_flight_recorder.json at the repo root, "
                         "or benchmarks/results/ with --smoke)")
    args = ap.parse_args(argv)
    mode = "smoke" if args.smoke else "full"
    out_path = args.out or (SMOKE_OUT if args.smoke else DEFAULT_OUT)
    _payload, ok = run_bench(mode, out_path)
    return 0 if ok else 1


def test_flight_recorder_bench_smoke(record, benchmark):
    """pytest entry point: the smoke configuration as a benchmark-suite
    row (``pytest benchmarks/bench_flight_recorder.py``)."""
    payload, ok = benchmark.pedantic(
        lambda: run_bench("smoke", SMOKE_OUT), rounds=1, iterations=1)
    assert ok, "flight-recorder identity check failed"
    record("flight_recorder",
           f"off={payload['off_seconds']:7.3f}s "
           f"on={payload['on_seconds']:7.3f}s "
           f"overhead={payload['overhead_pct']:+6.2f}%",
           off_seconds=payload["off_seconds"],
           on_seconds=payload["on_seconds"],
           overhead_pct=payload["overhead_pct"])


if __name__ == "__main__":
    sys.exit(main())
