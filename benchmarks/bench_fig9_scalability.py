"""E4 — Figure 9: Profiler scalability on the LU benchmark.

Strong-scaling sweep of the rank count at a fixed matrix size, measuring
the Profiler's relative overhead at each scale.  The paper observes the
overhead falling from 147.2% at 8 processes to 37.1% at 128: with the
work fixed, each rank executes fewer of the (instrumented) computation
events while its communication event count stays flat, so the profiling
tax shrinks.  The reproduced artifact is that monotone-decreasing shape.
"""

import pytest

from benchmarks.conftest import median_time
from repro.apps.lu import lu
from repro.profiler.session import baseline_run, profile_run

_ROWS = []


def _sweep_points(scale):
    return list(scale["rank_sweep"])


def test_fig9_rank_sweep(record, scale, benchmark):
    n = scale["lu_n"]
    reps = scale["reps"]
    params = dict(n=n)

    for nranks in _sweep_points(scale):
        native = median_time(
            lambda: baseline_run(lu, nranks, params=params,
                                 delivery="eager"), reps)
        prof = median_time(
            lambda: profile_run(lu, nranks, params=params, scope="report",
                                delivery="eager"), reps)
        overhead = 100.0 * (prof - native) / native
        _ROWS.append((nranks, overhead))
        record("fig9_scalability",
               f"ranks={nranks:<4d} native={native:7.3f}s "
               f"profiled={prof:7.3f}s overhead={overhead:6.1f}%",
               ranks=nranks, native_s=native, profiled_s=prof,
               overhead_pct=overhead)

    # the headline timing benchmark: profiled LU at the largest scale
    largest = _sweep_points(scale)[-1]
    benchmark.pedantic(
        lambda: profile_run(lu, largest, params=params, scope="report",
                            delivery="eager"),
        rounds=1, iterations=1)

    # shape assertion: overhead at the largest scale is well below the
    # smallest scale (the paper's 147% -> 37% trend)
    smallest_oh = _ROWS[0][1]
    largest_oh = _ROWS[-1][1]
    record("fig9_scalability",
           f"trend: {smallest_oh:.1f}% @ {_ROWS[0][0]} ranks -> "
           f"{largest_oh:.1f}% @ {_ROWS[-1][0]} ranks "
           "(paper: 147.2% @ 8 -> 37.1% @ 128)")
    assert largest_oh < smallest_oh
