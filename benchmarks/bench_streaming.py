"""Supplementary — streaming (online) analysis vs batch DN-Analyzer.

The paper's stated future work (section VII-B).  Measures the streaming
checker's throughput against the batch pipeline on the same traces and
records the memory bound it achieves (peak buffered load/store events vs
the trace total).
"""

import pytest

from repro.apps.lu import lu
from repro.core.checker import check_traces
from repro.core.streaming import check_streaming
from repro.profiler.session import profile_run


@pytest.fixture(scope="module")
def lu_traces(scale):
    run = profile_run(lu, min(8, scale["fig8_ranks"]),
                      params=dict(n=scale["lu_n"]), delivery="eager")
    return run.traces


def test_batch_analysis(lu_traces, benchmark):
    report = benchmark(lambda: check_traces(lu_traces))
    assert not report.findings


def test_streaming_analysis(lu_traces, record, benchmark):
    findings, checker = benchmark(lambda: check_streaming(lu_traces))
    assert not findings
    total = lu_traces.event_counts()["mem"]
    record("streaming",
           f"regions={len(checker.regions)} total-loadstore={total} "
           f"peak-buffered={checker.peak_buffered_mems} "
           f"bound={100 * checker.peak_buffered_mems / total:.1f}% of trace")
    assert checker.peak_buffered_mems < total
