"""Perf harness for the persistent-pool parallel DN-Analyzer.

Measures end-to-end ``check_traces`` wall-clock at several ``--jobs``
levels over one profiled run of the LU workload (>= 16 simulated ranks in
the full configuration), verifies that every parallel report is
byte-identical to the serial one, and writes a machine-readable
``BENCH_parallel.json`` (per-jobs median seconds, speedup vs serial, the
per-phase breakdown from ``CheckStats.phase_seconds``, and the
zero-copy byte counters that show memory-event columns travelling over
shared memory instead of pickles).

Two entry points:

* ``python benchmarks/bench_parallel_analyzer.py`` — the full
  configuration; writes ``BENCH_parallel.json`` at the repo root.
* ``python benchmarks/bench_parallel_analyzer.py --smoke`` — a small
  configuration for CI; same measurements and identity checks, but the
  artifact goes to ``benchmarks/results/`` so a quick run never
  overwrites the committed full-size result.

Each job level gets one untimed warmup run before measurement so the
numbers reflect the persistent pool's steady state (pool creation is a
one-time cost the first analysis of a process pays).

The speedup gate (full mode: >= 2x at jobs=4 and >= 0.95x at jobs=2;
smoke mode: >= 0.7x at jobs=4, a regression floor sized for a small
workload on shared CI cores) only applies when the machine actually
has >= 4 CPUs: on fewer
cores the worker processes time-slice a single core and wall-clock can
only go up, so the gate is recorded as skipped rather than failed —
unless ``--require-gate`` is passed, which turns an inapplicable gate
into a hard error (for CI steps that exist purely to enforce it).
``cpu_count`` and the multiprocessing start method are embedded in the
artifact so numbers from different machines are never compared blind.
"""

import argparse
import json
import os
import statistics
import sys
import time

from repro import obs
from repro.apps.lu import lu
from repro.core.checker import check_traces
from repro.core.config import CheckConfig
from repro.core.parallel import shutdown_pools, start_method
from repro.profiler.session import profile_run

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
RESULTS_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                           "results")
DEFAULT_OUT = os.path.join(REPO_ROOT, "BENCH_parallel.json")
SMOKE_OUT = os.path.join(RESULTS_DIR, "BENCH_parallel_smoke.json")

CONFIGS = {
    "full": dict(nranks=16, n=320, jobs=(1, 2, 4), reps=3),
    "smoke": dict(nranks=8, n=96, jobs=(1, 2, 4), reps=1),
}

#: per-mode speedup requirements at jobs=4 (plus a never-worse floor at
#: jobs=2 for the full workload; the smoke workload is too small for a
#: meaningful jobs=2 bound on shared CI cores).  The smoke bound is a
#: regression floor, not a scaling claim: at ~0.1s of serial work the
#: pool's fixed per-run costs (one detect install, worker prepare) are
#: a visible fraction of the total, so "parallel must stay within 30%
#: of serial" is what a healthy run looks like on shared CI cores,
#: while a zero-copy regression (e.g. rows back in the pickles) lands
#: well below it.
GATES = {
    "full": {"required_speedup": 2.0, "at_jobs": 4, "jobs2_floor": 0.95},
    "smoke": {"required_speedup": 0.7, "at_jobs": 4, "jobs2_floor": None},
}


def canonical(report):
    """Byte-comparable report form, modulo wall-clock timings."""
    payload = report.to_dict()
    payload["stats"].pop("phase_seconds")
    return json.dumps(payload, sort_keys=True)


def measure(traces, jobs, reps):
    """Median end-to-end seconds over ``reps`` runs (after one untimed
    warmup that primes the persistent pool), with the canonical report
    and the phase breakdown of the median-timed run."""
    check_traces(traces, config=CheckConfig(jobs=jobs))
    samples = []
    for _ in range(reps):
        start = time.perf_counter()
        report = check_traces(traces, config=CheckConfig(jobs=jobs))
        elapsed = time.perf_counter() - start
        samples.append((elapsed, report))
    samples.sort(key=lambda s: s[0])
    median_elapsed = statistics.median(s[0] for s in samples)
    median_report = samples[len(samples) // 2][1]
    return median_elapsed, median_report


def zero_copy_profile(traces, jobs):
    """One obs-instrumented run at ``jobs``: the pool counters and the
    per-phase byte counters that substantiate the zero-copy claim.
    Starts from a fresh pool so the artifact records the canonical
    one-creation-per-process shape (the measurement loop above already
    created one during warmup)."""
    shutdown_pools()
    rec = obs.configure(enabled=True)
    try:
        check_traces(traces, config=CheckConfig(jobs=jobs))
        out = {"jobs": jobs, "pool": {}, "pickled_bytes": {},
               "shm_bytes": {}}
        created = rec.registry.get("parallel_pool_created_total")
        reused = rec.registry.get("parallel_pool_reused_total")
        out["pool"] = {
            "created": created.total if created is not None else 0,
            "reused": reused.total if reused is not None else 0}
        pickled = rec.registry.get("parallel_pickled_bytes_total")
        if pickled is not None:
            for labels, value in pickled.samples():
                phase = out["pickled_bytes"].setdefault(
                    labels.get("phase", "?"), {})
                phase[labels.get("kind", "?")] = int(value)
        shm = rec.registry.get("parallel_shm_bytes_total")
        if shm is not None:
            out["shm_bytes"] = {labels.get("phase", "?"): int(value)
                                for labels, value in shm.samples()}
        return out
    finally:
        obs.reset()


def run_bench(mode, out_path, require_gate=False):
    cfg = CONFIGS[mode]
    gate_cfg = GATES[mode]
    cpus = os.cpu_count() or 1
    method = start_method()
    print(f"[bench_parallel] mode={mode} nranks={cfg['nranks']} "
          f"n={cfg['n']} jobs={cfg['jobs']} reps={cfg['reps']} "
          f"cpus={cpus} start_method={method}")

    run = profile_run(lu, cfg["nranks"], params=dict(n=cfg["n"]),
                      scope="report", delivery="eager")

    runs = []
    serial_seconds = None
    serial_canonical = None
    identical = True
    for jobs in cfg["jobs"]:
        seconds, report = measure(run.traces, jobs, cfg["reps"])
        if jobs == 1:
            serial_seconds = seconds
            serial_canonical = canonical(report)
            speedup = 1.0
        else:
            speedup = serial_seconds / seconds
            if canonical(report) != serial_canonical:
                identical = False
                print(f"[bench_parallel] FAIL: jobs={jobs} report "
                      "diverged from serial", file=sys.stderr)
        runs.append({
            "jobs": jobs,
            "seconds": round(seconds, 4),
            "speedup": round(speedup, 3),
            "phase_seconds": {k: round(v, 4)
                              for k, v in
                              report.stats.phase_seconds.items()},
        })
        print(f"[bench_parallel] jobs={jobs}: {seconds:.2f}s "
              f"(speedup {speedup:.2f}x, "
              f"{report.stats.events} events, "
              f"{len(report.findings)} findings)")

    fastest = min(runs, key=lambda r: r["seconds"])
    jobs1 = next(r for r in runs if r["jobs"] == 1)
    gate_jobs = gate_cfg["at_jobs"]
    gate_run = next((r for r in runs if r["jobs"] == gate_jobs), None)
    jobs2_run = next((r for r in runs if r["jobs"] == 2), None)
    gate_applies = cpus >= gate_jobs and gate_run is not None
    gate = {
        "required_speedup": gate_cfg["required_speedup"],
        "at_jobs": gate_jobs,
        "jobs2_floor": gate_cfg["jobs2_floor"],
        "applies": gate_applies,
        "measured_speedup": (gate_run["speedup"] if gate_run is not None
                             else None),
        "passed": None,
    }
    if gate_applies:
        passed = gate_run["speedup"] >= gate_cfg["required_speedup"]
        if gate_cfg["jobs2_floor"] is not None and jobs2_run is not None:
            passed = passed and (jobs2_run["speedup"]
                                 >= gate_cfg["jobs2_floor"])
        gate["passed"] = passed
        if passed:
            print(f"[bench_parallel] speedup gate passed: "
                  f"{gate_run['speedup']:.2f}x >= "
                  f"{gate_cfg['required_speedup']}x at jobs={gate_jobs}")
        else:
            print(f"[bench_parallel] FAIL: speedup gate "
                  f"{gate_run['speedup']:.2f}x < "
                  f"{gate_cfg['required_speedup']}x at jobs={gate_jobs}"
                  + (f" (or jobs=2 below {gate_cfg['jobs2_floor']}x "
                     f"floor: {jobs2_run['speedup']:.2f}x)"
                     if jobs2_run is not None
                     and gate_cfg["jobs2_floor"] is not None else ""),
                  file=sys.stderr)
    else:
        reason = (f"machine has {cpus} cpu(s)" if cpus < gate_jobs
                  else f"jobs={gate_jobs} not in sweep")
        gate["skipped_because"] = reason
        # a skipped gate should still leave usable signal behind: which
        # job count actually won, and where serial time goes per phase
        gate["fastest_jobs"] = fastest["jobs"]
        gate["jobs1_phase_seconds"] = jobs1["phase_seconds"]
        print(f"[bench_parallel] speedup gate skipped: {reason}; "
              f"fastest jobs={fastest['jobs']} "
              f"({fastest['seconds']:.2f}s)")

    zero_copy = zero_copy_profile(run.traces, max(cfg["jobs"]))

    payload = {
        "benchmark": "parallel_analyzer",
        "mode": mode,
        "workload": {"app": "lu", "nranks": cfg["nranks"],
                     "n": cfg["n"], "reps": cfg["reps"]},
        "machine": {"cpu_count": cpus, "start_method": method},
        "identical_reports": identical,
        "fastest_jobs": fastest["jobs"],
        "speedup_gate": gate,
        "zero_copy": zero_copy,
        "runs": runs,
    }
    os.makedirs(os.path.dirname(out_path), exist_ok=True)
    with open(out_path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    print(f"[bench_parallel] wrote {out_path}")

    ok = identical and gate["passed"] is not False
    if require_gate and not gate_applies:
        print("[bench_parallel] FAIL: --require-gate was passed but the "
              f"speedup gate cannot run here ({gate['skipped_because']}); "
              f"this check needs a runner with >= {gate_jobs} CPUs and "
              f"jobs={gate_jobs} in the sweep", file=sys.stderr)
        ok = False
    return payload, ok


def main(argv=None):
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--smoke", action="store_true",
                    help="small CI configuration (artifact goes to "
                         "benchmarks/results/, repo-root JSON untouched)")
    ap.add_argument("--require-gate", action="store_true",
                    help="fail (exit non-zero) if the speedup gate "
                         "cannot run on this machine instead of "
                         "recording it as skipped")
    ap.add_argument("--out", default=None,
                    help="artifact path (default: BENCH_parallel.json at "
                         "the repo root, or benchmarks/results/ with "
                         "--smoke)")
    args = ap.parse_args(argv)
    mode = "smoke" if args.smoke else "full"
    out_path = args.out or (SMOKE_OUT if args.smoke else DEFAULT_OUT)
    _payload, ok = run_bench(mode, out_path,
                             require_gate=args.require_gate)
    return 0 if ok else 1


def test_parallel_bench_smoke(record, benchmark):
    """pytest entry point: the smoke configuration as a benchmark-suite
    row (``pytest benchmarks/bench_parallel_analyzer.py``)."""
    payload, ok = benchmark.pedantic(
        lambda: run_bench("smoke", SMOKE_OUT), rounds=1, iterations=1)
    assert ok, "parallel report diverged from serial (or gate failed)"
    for run in payload["runs"]:
        record("parallel_analyzer",
               f"jobs={run['jobs']:<2d} seconds={run['seconds']:7.2f} "
               f"speedup={run['speedup']:5.2f}x",
               **{k: run[k] for k in ("jobs", "seconds", "speedup")})


if __name__ == "__main__":
    sys.exit(main())
