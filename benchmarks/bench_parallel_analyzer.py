"""Perf harness for the region-sharded parallel DN-Analyzer.

Measures end-to-end ``check_traces`` wall-clock at several ``--jobs``
levels over one profiled run of the LU workload (>= 16 simulated ranks in
the full configuration), verifies that every parallel report is
byte-identical to the serial one, and writes a machine-readable
``BENCH_parallel.json`` (per-jobs median seconds, speedup vs serial, and
the per-phase breakdown from ``CheckStats.phase_seconds``).

Two entry points:

* ``python benchmarks/bench_parallel_analyzer.py`` — the full
  configuration; writes ``BENCH_parallel.json`` at the repo root.
* ``python benchmarks/bench_parallel_analyzer.py --smoke`` — a small
  configuration for CI; same measurements and identity checks, but the
  artifact goes to ``benchmarks/results/`` so a quick run never
  overwrites the committed full-size result.

The speedup gate (>= 1.5x at jobs=4) only applies when the machine
actually has >= 4 CPUs: on fewer cores the worker processes time-slice a
single core and wall-clock can only go up, so the gate is recorded as
skipped rather than failed.  ``cpu_count`` is embedded in the artifact so
numbers from different machines are never compared blind.
"""

import argparse
import json
import os
import statistics
import sys
import time

from repro.apps.lu import lu
from repro.core.checker import check_traces
from repro.profiler.session import profile_run

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
RESULTS_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                           "results")
DEFAULT_OUT = os.path.join(REPO_ROOT, "BENCH_parallel.json")
SMOKE_OUT = os.path.join(RESULTS_DIR, "BENCH_parallel_smoke.json")

SPEEDUP_GATE = 1.5
GATE_JOBS = 4

CONFIGS = {
    "full": dict(nranks=16, n=192, jobs=(1, 2, 4), reps=3),
    "smoke": dict(nranks=4, n=48, jobs=(1, 2), reps=1),
}


def canonical(report):
    """Byte-comparable report form, modulo wall-clock timings."""
    payload = report.to_dict()
    payload["stats"].pop("phase_seconds")
    return json.dumps(payload, sort_keys=True)


def measure(traces, jobs, reps):
    """Median end-to-end seconds over ``reps`` runs, with the canonical
    report and the phase breakdown of the median-timed run."""
    samples = []
    for _ in range(reps):
        start = time.perf_counter()
        report = check_traces(traces, jobs=jobs)
        elapsed = time.perf_counter() - start
        samples.append((elapsed, report))
    samples.sort(key=lambda s: s[0])
    median_elapsed = statistics.median(s[0] for s in samples)
    median_report = samples[len(samples) // 2][1]
    return median_elapsed, median_report


def run_bench(mode, out_path):
    cfg = CONFIGS[mode]
    cpus = os.cpu_count() or 1
    print(f"[bench_parallel] mode={mode} nranks={cfg['nranks']} "
          f"n={cfg['n']} jobs={cfg['jobs']} reps={cfg['reps']} cpus={cpus}")

    run = profile_run(lu, cfg["nranks"], params=dict(n=cfg["n"]),
                      scope="report", delivery="eager")

    runs = []
    serial_seconds = None
    serial_canonical = None
    identical = True
    for jobs in cfg["jobs"]:
        seconds, report = measure(run.traces, jobs, cfg["reps"])
        if jobs == 1:
            serial_seconds = seconds
            serial_canonical = canonical(report)
            speedup = 1.0
        else:
            speedup = serial_seconds / seconds
            if canonical(report) != serial_canonical:
                identical = False
                print(f"[bench_parallel] FAIL: jobs={jobs} report "
                      "diverged from serial", file=sys.stderr)
        runs.append({
            "jobs": jobs,
            "seconds": round(seconds, 4),
            "speedup": round(speedup, 3),
            "phase_seconds": {k: round(v, 4)
                              for k, v in
                              report.stats.phase_seconds.items()},
        })
        print(f"[bench_parallel] jobs={jobs}: {seconds:.2f}s "
              f"(speedup {speedup:.2f}x, "
              f"{report.stats.events} events, "
              f"{len(report.findings)} findings)")

    fastest = min(runs, key=lambda r: r["seconds"])
    jobs1 = next(r for r in runs if r["jobs"] == 1)
    gate_run = next((r for r in runs if r["jobs"] == GATE_JOBS), None)
    gate_applies = cpus >= GATE_JOBS and gate_run is not None
    gate = {
        "required_speedup": SPEEDUP_GATE,
        "at_jobs": GATE_JOBS,
        "applies": gate_applies,
        "passed": (gate_run["speedup"] >= SPEEDUP_GATE
                   if gate_applies else None),
    }
    if not gate_applies:
        reason = (f"machine has {cpus} cpu(s)" if cpus < GATE_JOBS
                  else f"jobs={GATE_JOBS} not in sweep")
        gate["skipped_because"] = reason
        # a skipped gate should still leave usable signal behind: which
        # job count actually won, and where serial time goes per phase
        gate["fastest_jobs"] = fastest["jobs"]
        gate["jobs1_phase_seconds"] = jobs1["phase_seconds"]
        print(f"[bench_parallel] speedup gate skipped: {reason}; "
              f"fastest jobs={fastest['jobs']} "
              f"({fastest['seconds']:.2f}s)")
    elif gate["passed"]:
        print(f"[bench_parallel] speedup gate passed: "
              f"{gate_run['speedup']:.2f}x >= {SPEEDUP_GATE}x")
    else:
        print(f"[bench_parallel] FAIL: speedup gate "
              f"{gate_run['speedup']:.2f}x < {SPEEDUP_GATE}x",
              file=sys.stderr)

    payload = {
        "benchmark": "parallel_analyzer",
        "mode": mode,
        "workload": {"app": "lu", "nranks": cfg["nranks"],
                     "n": cfg["n"], "reps": cfg["reps"]},
        "machine": {"cpu_count": cpus},
        "identical_reports": identical,
        "fastest_jobs": fastest["jobs"],
        "speedup_gate": gate,
        "runs": runs,
    }
    os.makedirs(os.path.dirname(out_path), exist_ok=True)
    with open(out_path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    print(f"[bench_parallel] wrote {out_path}")

    ok = identical and gate["passed"] is not False
    return payload, ok


def main(argv=None):
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--smoke", action="store_true",
                    help="small CI configuration (artifact goes to "
                         "benchmarks/results/, repo-root JSON untouched)")
    ap.add_argument("--out", default=None,
                    help="artifact path (default: BENCH_parallel.json at "
                         "the repo root, or benchmarks/results/ with "
                         "--smoke)")
    args = ap.parse_args(argv)
    mode = "smoke" if args.smoke else "full"
    out_path = args.out or (SMOKE_OUT if args.smoke else DEFAULT_OUT)
    _payload, ok = run_bench(mode, out_path)
    return 0 if ok else 1


def test_parallel_bench_smoke(record, benchmark):
    """pytest entry point: the smoke configuration as a benchmark-suite
    row (``pytest benchmarks/bench_parallel_analyzer.py``)."""
    payload, ok = benchmark.pedantic(
        lambda: run_bench("smoke", SMOKE_OUT), rounds=1, iterations=1)
    assert ok, "parallel report diverged from serial (or gate failed)"
    for run in payload["runs"]:
        record("parallel_analyzer",
               f"jobs={run['jobs']:<2d} seconds={run['seconds']:7.2f} "
               f"speedup={run['speedup']:5.2f}x",
               **{k: run[k] for k in ("jobs", "seconds", "speedup")})


if __name__ == "__main__":
    sys.exit(main())
