"""Perf harness for the sweep-line conflict engine.

Measures the combined ``model + intra + inter`` phase seconds of serial
``check_traces`` under ``engine="sweep"`` vs ``engine="pairwise"`` over
one binary-format profiled run of the LU workload, verifies the two
reports are byte-identical, runs a full differential (every registered
bug case x both memory models x both engines), and writes a
machine-readable ``BENCH_conflict_engine.json``.

Two entry points:

* ``python benchmarks/bench_conflict_engine.py`` — the full
  configuration; writes ``BENCH_conflict_engine.json`` at the repo root.
* ``python benchmarks/bench_conflict_engine.py --smoke`` — a small
  configuration for CI; same gates, artifact under
  ``benchmarks/results/`` so a quick run never overwrites the committed
  full-size result.

Unlike the parallel-analyzer gate, the speedup gate is independent of
the CPU count — both engines run in a single process — but it only
applies to the **full** configuration: the smoke workload is small
enough that the sweep engine's fixed vectorization overhead dominates,
so smoke runs record the ratio without gating on it (report identity and
the differential still gate).
"""

import argparse
import json
import os
import statistics
import sys
import time

from repro.apps.lu import lu
from repro.apps.registry import BUG_CASES, EXTRA_CASES
from repro.core.checker import check_traces
from repro.profiler.session import profile_run

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
RESULTS_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                           "results")
DEFAULT_OUT = os.path.join(REPO_ROOT, "BENCH_conflict_engine.json")
SMOKE_OUT = os.path.join(RESULTS_DIR, "BENCH_conflict_engine_smoke.json")

SPEEDUP_GATE = 3.0
#: the phases the sweep engine rewrites; preprocess/matching/clocks/
#: epochs/regions are engine-independent by construction
ENGINE_PHASES = ("model", "intra", "inter")
MEMORY_MODELS = ("separate", "unified")
RANKS_CAP = 8

CONFIGS = {
    "full": dict(nranks=16, n=192, reps=3),
    "smoke": dict(nranks=4, n=48, reps=1),
}


def canonical(report):
    """Byte-comparable report form, modulo wall-clock timings."""
    payload = report.to_dict()
    payload["stats"].pop("phase_seconds")
    return json.dumps(payload, sort_keys=True)


def combined_seconds(report):
    return sum(report.stats.phase_seconds.get(p, 0.0)
               for p in ENGINE_PHASES)


def measure(traces, engine, reps):
    """Median combined engine-phase seconds over ``reps`` serial runs,
    with the report of the median-timed run."""
    samples = []
    for _ in range(reps):
        report = check_traces(traces, engine=engine)
        samples.append((combined_seconds(report), report))
    samples.sort(key=lambda s: s[0])
    median = statistics.median(s[0] for s in samples)
    return median, samples[len(samples) // 2][1]


def run_differential():
    """Every registered bug case x memory model: sweep and pairwise
    reports must be byte-identical.  Returns (cases_checked, mismatches).
    """
    mismatches = []
    cases = list(BUG_CASES) + list(EXTRA_CASES)
    for case in cases:
        nranks = min(case.nranks, RANKS_CAP)
        run = profile_run(case.app, nranks, params=case.params(True))
        for memory_model in MEMORY_MODELS:
            reports = {
                engine: canonical(check_traces(
                    run.traces, memory_model=memory_model, engine=engine))
                for engine in ("sweep", "pairwise")
            }
            if reports["sweep"] != reports["pairwise"]:
                mismatches.append(f"{case.name}/{memory_model}")
                print(f"[bench_engine] FAIL: {case.name} "
                      f"({memory_model}) reports diverge across engines",
                      file=sys.stderr)
    return len(cases) * len(MEMORY_MODELS), mismatches


def run_bench(mode, out_path):
    cfg = CONFIGS[mode]
    print(f"[bench_engine] mode={mode} nranks={cfg['nranks']} "
          f"n={cfg['n']} reps={cfg['reps']}")

    run = profile_run(lu, cfg["nranks"], params=dict(n=cfg["n"]),
                      scope="report", delivery="eager",
                      trace_format="binary")

    engines = {}
    for engine in ("sweep", "pairwise"):
        seconds, report = measure(run.traces, engine, cfg["reps"])
        engines[engine] = {
            "combined_seconds": round(seconds, 4),
            "phase_seconds": {k: round(v, 4)
                              for k, v in
                              report.stats.phase_seconds.items()},
            "canonical": canonical(report),
            "findings": len(report.findings),
        }
        print(f"[bench_engine] {engine}: {seconds:.3f}s over "
              f"{'+'.join(ENGINE_PHASES)} "
              f"({report.stats.local_accesses} local accesses, "
              f"{len(report.findings)} findings)")

    identical = (engines["sweep"].pop("canonical")
                 == engines["pairwise"].pop("canonical"))
    if not identical:
        print("[bench_engine] FAIL: sweep report diverged from pairwise "
              "on the LU workload", file=sys.stderr)

    speedup = (engines["pairwise"]["combined_seconds"]
               / max(engines["sweep"]["combined_seconds"], 1e-9))
    gate_applies = mode == "full"
    gate = {"required_speedup": SPEEDUP_GATE, "applies": gate_applies,
            "passed": speedup >= SPEEDUP_GATE if gate_applies else None}
    if gate_applies:
        print(f"[bench_engine] speedup {speedup:.2f}x "
              f"({'>=' if gate['passed'] else '<'} {SPEEDUP_GATE}x gate)")
    else:
        gate["skipped_because"] = ("smoke workload too small to exercise "
                                   "the hot path")
        print(f"[bench_engine] speedup {speedup:.2f}x "
              f"(gate skipped in {mode} mode)")

    checked, mismatches = run_differential()
    print(f"[bench_engine] differential: {checked} case/model "
          f"combinations, {len(mismatches)} mismatch(es)")

    payload = {
        "benchmark": "conflict_engine",
        "mode": mode,
        "workload": {"app": "lu", "nranks": cfg["nranks"], "n": cfg["n"],
                     "reps": cfg["reps"], "trace_format": "binary"},
        "machine": {"cpu_count": os.cpu_count() or 1},
        "phases": list(ENGINE_PHASES),
        "engines": engines,
        "speedup": round(speedup, 3),
        "speedup_gate": gate,
        "identical_reports": identical,
        "differential": {"combinations": checked,
                         "mismatches": mismatches},
    }
    os.makedirs(os.path.dirname(out_path), exist_ok=True)
    with open(out_path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    print(f"[bench_engine] wrote {out_path}")

    ok = identical and gate["passed"] is not False and not mismatches
    return payload, ok


def main(argv=None):
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--smoke", action="store_true",
                    help="small CI configuration (artifact goes to "
                         "benchmarks/results/, repo-root JSON untouched)")
    ap.add_argument("--out", default=None,
                    help="artifact path (default: BENCH_conflict_engine."
                         "json at the repo root, or benchmarks/results/ "
                         "with --smoke)")
    args = ap.parse_args(argv)
    mode = "smoke" if args.smoke else "full"
    out_path = args.out or (SMOKE_OUT if args.smoke else DEFAULT_OUT)
    _payload, ok = run_bench(mode, out_path)
    return 0 if ok else 1


def test_conflict_engine_smoke(record, benchmark):
    """pytest entry point: the smoke configuration as a benchmark-suite
    row (``pytest benchmarks/bench_conflict_engine.py``)."""
    payload, ok = benchmark.pedantic(
        lambda: run_bench("smoke", SMOKE_OUT), rounds=1, iterations=1)
    assert ok, "engine reports diverged (or the speedup gate failed)"
    for engine, row in payload["engines"].items():
        record("conflict_engine",
               f"engine={engine:<9s} "
               f"combined={row['combined_seconds']:7.3f}s "
               f"speedup={payload['speedup']:5.2f}x",
               engine=engine, combined_seconds=row["combined_seconds"],
               speedup=payload["speedup"])


if __name__ == "__main__":
    sys.exit(main())
