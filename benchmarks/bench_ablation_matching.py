"""E8 — ablation: Algorithm 1 vs scan-from-the-beginning matching.

Section IV-C-2a rejects the straightforward matcher ("scans through all
the traces ... time-consuming") in favour of the progress-counter design
with per-stream cursors.  This benchmark sweeps the trace length and times
both on identical traces; the outputs are asserted identical, and the
cursor-based matcher's advantage grows with trace size (linear vs
quadratic scans).
"""

import pytest

from repro.core.matching import (
    KIND_COLLECTIVE, KIND_P2P, match_synchronization,
    match_synchronization_naive,
)
from repro.core.preprocess import preprocess
from repro.profiler.session import profile_run

NRANKS = 4


def chatty_app(mpi, iterations):
    """Alternating collectives and ring messages: all-sync trace."""
    for i in range(iterations):
        if i % 3 == 0:
            mpi.barrier()
        elif i % 3 == 1:
            mpi.bcast("x" if mpi.rank == 0 else None, root=0)
        else:
            right = (mpi.rank + 1) % mpi.size
            left = (mpi.rank - 1) % mpi.size
            mpi.sendrecv(i, dest=right, source=left)


def _trace(iterations):
    run = profile_run(chatty_app, NRANKS, params=dict(iterations=iterations),
                      scope="none", capture_locations=False)
    return preprocess(run.traces)


def _canonical(matches):
    out = set()
    for m in matches:
        if m.kind == KIND_COLLECTIVE:
            out.add(("coll", m.fn, tuple(sorted(m.members.items()))))
        elif m.kind == KIND_P2P:
            out.add(("p2p", m.src, m.dst))
    return out


@pytest.mark.parametrize("iterations", [30, 90, 270])
@pytest.mark.parametrize("algorithm", ["algorithm1", "naive"])
def test_matching_scaling(iterations, algorithm, record, benchmark):
    pre = _trace(iterations)
    matcher = (match_synchronization if algorithm == "algorithm1"
               else match_synchronization_naive)
    benchmark.group = f"matching-{iterations}-iters"
    matches = benchmark(lambda: matcher(pre))
    events = sum(len(ev) for ev in pre.events.values())
    record("ablation_matching",
           f"{algorithm:11s} iterations={iterations:<4d} "
           f"events={events:<6d} matches={len(matches)}")


def test_matchers_equivalent(record, benchmark):
    pre = _trace(60)
    fast = benchmark(lambda: match_synchronization(pre))
    naive = match_synchronization_naive(pre)
    assert _canonical(fast) == _canonical(naive)
    record("ablation_matching",
           f"equivalence check: {len(_canonical(fast))} canonical matches "
           "identical across algorithms")
