"""Supplementary — DN-Analyzer cost vs trace length.

The paper's offline analyzer must keep up with production traces (they
ran it on a workstation against 64-process cluster runs).  This benchmark
sweeps the trace length on a fixed-rank jacobi run and records analysis
time per event, demonstrating near-linear scaling of the full pipeline
(matching + clocks + regions + both detectors).
"""

import time

import pytest

from repro.apps.jacobi import jacobi
from repro.core.checker import check_traces
from repro.profiler.session import profile_run

_POINTS = []


@pytest.mark.parametrize("iterations", [4, 16, 64])
def test_analysis_scaling(iterations, record, benchmark):
    run = profile_run(jacobi, 4,
                      params=dict(buggy=False, interior=16,
                                  iterations=iterations),
                      delivery="eager", capture_locations=False)
    benchmark.group = "analyzer-scaling"
    report = benchmark(lambda: check_traces(run.traces))
    events = report.stats.events
    per_event_us = 1e6 * report.stats.total_seconds / events
    _POINTS.append((events, per_event_us))
    record("analyzer_scaling",
           f"iterations={iterations:<4d} events={events:<7d} "
           f"analysis={report.stats.total_seconds * 1000:8.1f}ms "
           f"per-event={per_event_us:6.1f}us")
    assert not report.findings


def test_per_event_cost_stays_bounded(record, benchmark):
    """Near-linear pipeline: per-event cost must not blow up with trace
    length (allow 3x drift for constant overheads at the small end)."""
    assert len(_POINTS) >= 2
    benchmark(lambda: sorted(_POINTS))
    smallest = _POINTS[0][1]
    largest = _POINTS[-1][1]
    record("analyzer_scaling",
           f"per-event cost drift: {smallest:.1f}us -> {largest:.1f}us")
    assert largest < 3.0 * max(smallest, 1e-9)
