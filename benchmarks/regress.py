"""Perf-regression compare: current ``BENCH_*.json`` vs committed baselines.

Pairs every payload in ``--current-dir`` (default:
``benchmarks/results/``, where CI smoke runs write) with the committed
baseline of the same ``"benchmark"`` field in ``--baseline-dir``
(default: the repo root) and diffs a small set of per-benchmark
indicator metrics with a tolerance band.

Baselines are measured in *full* mode while CI runs *smoke* mode, so
absolute seconds are only compared when the two payloads ran the same
mode; across modes only scale-invariant ratios (speedups, overhead
percentages, size ratios) are compared.

Default is a non-blocking warn (exit 0) so noisy CI machines don't
block merges; ``--strict`` turns regressions into exit 1.
"""

from __future__ import annotations

import argparse
import glob
import json
import os
import sys
from typing import Dict, List, Optional, Tuple

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
DEFAULT_CURRENT = os.path.join(REPO_ROOT, "benchmarks", "results")

#: per-benchmark indicator metrics:
#: (label, path, direction, cross-mode sanity bound or None).
#: direction "higher" = bigger is better, "lower" = smaller is better.
#: Same-mode payloads compare against the baseline value within the
#: tolerance band; different-mode payloads (CI smoke vs committed full)
#: only check the absolute sanity bound — the one invariant the
#: optimization must preserve at any scale.
_METRICS: Dict[str, List[Tuple[str, Tuple[object, ...], str,
                               Optional[float]]]] = {
    "incremental": [
        ("warm_speedup", ("warm_speedup",), "higher", 3.0),
        ("cold_seconds", ("cold_seconds",), "lower", None),
        ("warm_seconds", ("warm_seconds",), "lower", None),
    ],
    "conflict_engine": [
        ("sweep_seconds", ("engines", "sweep", "combined_seconds"),
         "lower", None),
        ("pairwise_seconds", ("engines", "pairwise", "combined_seconds"),
         "lower", None),
    ],
    "parallel_analyzer": [
        ("serial_seconds", ("runs", 0, "seconds"), "lower", None),
        # measured_speedup is null when the runner had too few cores to
        # apply the gate (payload records it skipped); _dig then skips
        # the metric rather than comparing against nothing
        ("jobs4_speedup", ("speedup_gate", "measured_speedup"),
         "higher", None),
    ],
    "trace_format": [
        ("read_speedup_binary_vs_text",
         ("read_speedup_binary_vs_text",), "higher", 1.2),
        ("binary_read_seconds",
         ("formats", "binary", "read_preprocess_seconds"), "lower", None),
    ],
    "flight_recorder": [
        ("overhead_pct", ("overhead_pct",), "lower", 10.0),
    ],
    "control_plane": [
        # cross-mode invariant: the columnar control plane may never
        # lose to the object walk, even on the tiny smoke workload (the
        # full-mode 3x group gate lives in the payload's own gate field)
        ("control_group_speedup", ("speedup", "control_group"),
         "higher", 1.0),
        ("end_to_end_speedup", ("speedup", "end_to_end"),
         "higher", None),
        ("columnar_control_seconds",
         ("planes", "columnar", "control_seconds"), "lower", None),
    ],
    "fuzz": [
        # cross-mode invariants: every injected conflict must be found
        # and every differential arm must agree, at any corpus size
        ("corpus_recall", ("corpus", "recall"), "higher", 1.0),
        ("corpus_mismatches", ("corpus", "mismatches"), "lower", 0.0),
        ("corpus_precision", ("corpus", "precision"), "higher", None),
        ("scale_analyze_events_per_second",
         ("scale", "analyze_events_per_second"), "higher", None),
    ],
    "trace_gen": [
        # the cross-mode invariant: the bulk lane may never lose to the
        # scalar lane (the full-mode 5x gate needs git history, so it
        # lives in the harness, not here)
        ("lane_ratio_scalar_vs_bulk",
         ("lane_ratio_scalar_vs_bulk",), "higher", 0.7),
        ("bulk_generation_seconds",
         ("arms", "bulk", "seconds"), "lower", None),
        ("bulk_events_per_second",
         ("arms", "bulk", "events_per_second"), "higher", None),
    ],
}


def _dig(payload, path) -> Optional[float]:
    node = payload
    for key in path:
        try:
            node = node[key]
        except (KeyError, IndexError, TypeError):
            return None
    return float(node) if isinstance(node, (int, float)) else None


def load_payloads(directory: str) -> Dict[str, dict]:
    """``benchmark-field -> payload`` for every BENCH_*.json in a dir."""
    out: Dict[str, dict] = {}
    for path in sorted(glob.glob(os.path.join(directory, "BENCH_*.json"))):
        try:
            with open(path, "r", encoding="utf-8") as fh:
                payload = json.load(fh)
        except (OSError, ValueError):
            continue
        name = payload.get("benchmark")
        if name:
            out[str(name)] = payload
    return out


def compare_payload(name: str, current: dict, baseline: dict,
                    tolerance: float) -> List[dict]:
    same_mode = current.get("mode") == baseline.get("mode")
    deltas: List[dict] = []
    for label, path, direction, sanity in _METRICS.get(name, []):
        cur = _dig(current, path)
        if cur is None:
            continue
        if same_mode:
            base = _dig(baseline, path)
            if base is None:
                continue
            if direction == "higher":
                regressed = cur < base * (1.0 - tolerance)
            else:
                regressed = cur > base * (1.0 + tolerance)
            deltas.append({
                "benchmark": name, "metric": label, "current": cur,
                "baseline": base, "direction": direction,
                "kind": "tolerance",
                "status": "regression" if regressed else "ok",
            })
        elif sanity is not None:
            regressed = (cur < sanity if direction == "higher"
                         else cur > sanity)
            deltas.append({
                "benchmark": name, "metric": label, "current": cur,
                "baseline": sanity, "direction": direction,
                "kind": "sanity-bound",
                "status": "regression" if regressed else "ok",
            })
    return deltas


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--baseline-dir", default=REPO_ROOT,
                    help="directory with committed BENCH_*.json baselines "
                         "(default: repo root)")
    ap.add_argument("--current-dir", default=DEFAULT_CURRENT,
                    help="directory with fresh BENCH_*.json payloads "
                         "(default: benchmarks/results/)")
    ap.add_argument("--tolerance", type=float, default=0.25,
                    help="allowed degradation fraction (default 0.25)")
    ap.add_argument("--strict", action="store_true",
                    help="exit 1 on regression (default: warn only)")
    ap.add_argument("--json", action="store_true",
                    help="emit the comparison as JSON")
    args = ap.parse_args(argv)

    baselines = load_payloads(args.baseline_dir)
    currents = load_payloads(args.current_dir)
    if not currents:
        print(f"[regress] no BENCH_*.json under {args.current_dir}; "
              "nothing to compare")
        return 0

    deltas: List[dict] = []
    for name, current in sorted(currents.items()):
        baseline = baselines.get(name)
        if baseline is None:
            print(f"[regress] {name}: no committed baseline, skipping")
            continue
        deltas.extend(compare_payload(name, current, baseline,
                                      args.tolerance))

    regressions = [d for d in deltas if d["status"] == "regression"]
    if args.json:
        print(json.dumps({"tolerance": args.tolerance, "deltas": deltas,
                          "regressions": len(regressions)}, indent=2))
    else:
        for d in deltas:
            marker = "!!" if d["status"] == "regression" else "ok"
            print(f"[regress] [{marker}] {d['benchmark']}/{d['metric']}: "
                  f"{d['current']} vs {d['kind']} {d['baseline']} "
                  f"({d['direction']} is better)")
        verdict = ("REGRESSION" if regressions else "OK")
        print(f"[regress] {verdict}: {len(regressions)} regression(s) in "
              f"{len(deltas)} compared metric(s), tolerance "
              f"{args.tolerance * 100:.0f}%")
    if regressions and args.strict:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
