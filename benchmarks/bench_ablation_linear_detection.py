"""E7 — ablation: window-vector (linear) vs combinatorial detection.

Section IV-C-4: examining each pair of operations in a concurrent region
"is combinatorial with respect to the total number of operations"; keying
recorded operations by (window, target) makes the scan effectively linear.
The sweep grows the number of ranks in an all-to-all Put pattern (every
rank Puts into every other rank's private slot), where the naive detector
enumerates all O((P^2)^2) op pairs while the window-vector detector only
compares within per-target cells.
"""

import pytest

from repro.core.clocks import ConcurrencyOracle
from repro.core.epochs import EpochIndex
from repro.core.inter import detect_cross_process, detect_cross_process_naive
from repro.core.matching import match_synchronization
from repro.core.model import build_access_model
from repro.core.preprocess import preprocess
from repro.core.regions import RegionIndex
from repro.profiler.session import profile_run
from repro.simmpi import DOUBLE


def all_to_all_puts(mpi, ops_per_pair):
    """Every rank Puts into every other rank's private slot; race-free."""
    buf = mpi.alloc("buf", mpi.size * ops_per_pair, datatype=DOUBLE)
    src = mpi.alloc("src", 1, datatype=DOUBLE, fill=float(mpi.rank))
    win = mpi.win_create(buf)
    win.fence()
    for other in range(mpi.size):
        if other == mpi.rank:
            continue
        for k in range(ops_per_pair):
            win.put(src, target=other,
                    target_disp=mpi.rank * ops_per_pair + k,
                    origin_count=1)
    win.fence()
    win.free()


def _stages(nranks, ops_per_pair):
    run = profile_run(all_to_all_puts, nranks,
                      params=dict(ops_per_pair=ops_per_pair),
                      scope="none", capture_locations=False,
                      delivery="eager")
    pre = preprocess(run.traces)
    matches = match_synchronization(pre)
    oracle = ConcurrencyOracle(pre, matches)
    epochs = EpochIndex(pre)
    model = build_access_model(pre, epochs)
    regions = RegionIndex(pre, matches)
    return pre, model, regions, oracle, epochs


@pytest.mark.parametrize("nranks", [4, 8, 12])
@pytest.mark.parametrize("algorithm", ["window-vector", "naive"])
def test_detection_scaling(nranks, algorithm, record, benchmark):
    stages = _stages(nranks, ops_per_pair=2)
    detect = (detect_cross_process if algorithm == "window-vector"
              else detect_cross_process_naive)
    benchmark.group = f"inter-detect-{nranks}-ranks"
    findings = benchmark(lambda: detect(*stages))
    ops = len(stages[1].ops)
    record("ablation_linear_detection",
           f"{algorithm:14s} ranks={nranks:<3d} ops={ops:<5d} "
           f"findings={len(findings)}")
    assert findings == []  # the pattern is race-free


def test_detectors_equivalent_on_racy_input(record, benchmark):
    """Same findings on a racy workload (lockopts at 6 ranks)."""
    from repro.apps.lockopts import lockopts

    run = profile_run(lockopts, 6, params=dict(buggy=True),
                      delivery="random")
    pre = preprocess(run.traces)
    matches = match_synchronization(pre)
    oracle = ConcurrencyOracle(pre, matches)
    epochs = EpochIndex(pre)
    model = build_access_model(pre, epochs)
    regions = RegionIndex(pre, matches)

    fast = benchmark(lambda: detect_cross_process(
        pre, model, regions, oracle, epochs))
    naive = detect_cross_process_naive(pre, model, regions, oracle, epochs)
    assert sorted(f.dedup_key for f in fast) == \
        sorted(f.dedup_key for f in naive)
    record("ablation_linear_detection",
           f"equivalence on racy input: {len(fast)} findings from both")
