"""Perf harness for the binary columnar trace format (v2).

Profiles one LU run, writes the identical event stream in both on-disk
formats, and measures per format: write throughput, bytes on disk, and
end-to-end read+preprocess throughput (call-only registry preprocess
plus a full drain of the packed load/store blocks — the exact ingest
path the analyzer uses).  Reports must be byte-identical across formats
and job counts; ``BENCH_trace_format.json`` records everything.

Two entry points:

* ``python benchmarks/bench_trace_format.py`` — the full configuration
  (16-rank LU, >= 100k load/store events); artifact at the repo root.
* ``python benchmarks/bench_trace_format.py --smoke`` — a small CI
  configuration; same measurements and identity checks, artifact under
  ``benchmarks/results/`` so it never overwrites the committed result.

Gates (full mode): binary read+preprocess >= 3x faster than text, and
binary bytes on disk <= half of text.  The size gate also applies in
smoke mode; the speed gate is recorded but not enforced there (tiny
traces make ratios noisy on loaded CI machines).
"""

import argparse
import json
import os
import shutil
import statistics
import sys
import tempfile
import time

from repro.apps.lu import lu
from repro.core.checker import check_traces
from repro.core.preprocess import preprocess_calls
from repro.profiler.session import profile_run
from repro.profiler.tracer import (
    FORMAT_BINARY, FORMAT_TEXT, TraceSet, TraceWriter,
)

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
RESULTS_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                           "results")
DEFAULT_OUT = os.path.join(REPO_ROOT, "BENCH_trace_format.json")
SMOKE_OUT = os.path.join(RESULTS_DIR, "BENCH_trace_format_smoke.json")

READ_SPEEDUP_GATE = 3.0
JOB_COUNTS = (1, 4)

#: the 2x size requirement is defined over the mem-event-heavy full
#: workload; the smoke workload is call-dominated (calls encode as text
#: records in both formats), so there the gate only demands "smaller"
CONFIGS = {
    # n=768 puts ~295k load/store events against ~43k calls — the
    # mem-heavy regime the binary format is for (and the acceptance
    # floor of 100k mem events with room to spare)
    "full": dict(nranks=16, n=768, reps=3, size_ratio_gate=2.0),
    "smoke": dict(nranks=4, n=48, reps=1, size_ratio_gate=1.0),
}

FORMATS = (FORMAT_TEXT, FORMAT_BINARY)


def canonical(report):
    """Byte-comparable report form, modulo wall-clock timings."""
    payload = report.to_dict()
    payload["stats"].pop("phase_seconds")
    return json.dumps(payload, sort_keys=True)


def trace_bytes(directory):
    return sum(os.path.getsize(os.path.join(directory, name))
               for name in os.listdir(directory)
               if name.startswith("trace."))


def rewrite(events_by_rank, nranks, out_dir, fmt):
    """Write the materialized event stream in ``fmt``; returns seconds."""
    start = time.perf_counter()
    for rank in range(nranks):
        path = TraceSet.rank_path(out_dir, rank, fmt)
        with TraceWriter(path, rank, nranks, app="lu",
                         format=fmt) as writer:
            for event in events_by_rank[rank]:
                writer.write(event)
    return time.perf_counter() - start


def read_preprocess(directory, reps):
    """Median seconds for the analyzer's ingest: call-only preprocess
    (registries + counts) plus a full drain of every packed load/store
    block through the format-agnostic stream API."""
    samples = []
    events_seen = 0
    for _ in range(reps):
        start = time.perf_counter()
        traces = TraceSet(directory)
        pre = preprocess_calls(traces)
        events_seen = pre.total_events
        drained = sum(len(events) for events in pre.events.values())
        for rank in range(traces.nranks):
            for block in traces.mem_blocks(rank):
                drained += len(block)
        samples.append(time.perf_counter() - start)
        assert drained == events_seen, "ingest drained a partial trace"
    return statistics.median(samples), events_seen


def run_bench(mode, out_path):
    cfg = CONFIGS[mode]
    cpus = os.cpu_count() or 1
    print(f"[bench_trace_format] mode={mode} nranks={cfg['nranks']} "
          f"n={cfg['n']} reps={cfg['reps']} cpus={cpus}")

    workdir = tempfile.mkdtemp(prefix="bench-trace-format-")
    try:
        run = profile_run(lu, cfg["nranks"], params=dict(n=cfg["n"]),
                          scope="report", delivery="eager",
                          trace_dir=os.path.join(workdir, "profiled"))
        counts = run.traces.event_counts()
        total_events = counts["call"] + counts["mem"]
        print(f"[bench_trace_format] workload: {counts['call']} calls, "
              f"{counts['mem']} load/store events")

        # one materialized copy of the stream, so both write arms pay
        # identical event-construction cost and differ only in encoding
        events_by_rank = run.traces.all_events()

        formats = {}
        for fmt in FORMATS:
            out_dir = os.path.join(workdir, fmt)
            os.makedirs(out_dir)
            write_seconds = rewrite(events_by_rank, cfg["nranks"],
                                    out_dir, fmt)
            nbytes = trace_bytes(out_dir)
            read_seconds, events_seen = read_preprocess(out_dir,
                                                        cfg["reps"])
            assert events_seen == total_events
            formats[fmt] = {
                "write_seconds": round(write_seconds, 4),
                "write_events_per_second": round(
                    total_events / write_seconds),
                "bytes_on_disk": nbytes,
                "read_preprocess_seconds": round(read_seconds, 4),
                "read_events_per_second": round(
                    total_events / read_seconds),
                "dir": fmt,
            }
            print(f"[bench_trace_format] {fmt}: write {write_seconds:.2f}s, "
                  f"{nbytes} bytes, read+preprocess {read_seconds:.2f}s")

        # checker reports must be byte-identical across formats and jobs
        identical = True
        baseline = None
        for fmt in FORMATS:
            traces = TraceSet(os.path.join(workdir, fmt))
            for jobs in JOB_COUNTS:
                got = canonical(check_traces(traces, jobs=jobs))
                if baseline is None:
                    baseline = got
                elif got != baseline:
                    identical = False
                    print(f"[bench_trace_format] FAIL: report diverged "
                          f"for format={fmt} jobs={jobs}",
                          file=sys.stderr)
        if identical:
            print("[bench_trace_format] reports byte-identical across "
                  f"formats and jobs in {JOB_COUNTS}")

        text, binary = formats[FORMAT_TEXT], formats[FORMAT_BINARY]
        read_speedup = (text["read_preprocess_seconds"] /
                        binary["read_preprocess_seconds"])
        size_ratio = text["bytes_on_disk"] / binary["bytes_on_disk"]

        speed_applies = mode == "full"
        speed_gate = {
            "required_speedup": READ_SPEEDUP_GATE,
            "measured_speedup": round(read_speedup, 2),
            "applies": speed_applies,
            "passed": (read_speedup >= READ_SPEEDUP_GATE
                       if speed_applies else None),
        }
        if not speed_applies:
            speed_gate["skipped_because"] = (
                "smoke traces are too small for a stable ratio")
        size_gate = {
            "required_ratio": cfg["size_ratio_gate"],
            "measured_ratio": round(size_ratio, 2),
            "applies": True,
            "passed": size_ratio >= cfg["size_ratio_gate"],
        }
        for name, gate in (("read-speedup", speed_gate),
                           ("size-ratio", size_gate)):
            if gate["passed"] is False:
                print(f"[bench_trace_format] FAIL: {name} gate "
                      f"{gate.get('measured_speedup', gate.get('measured_ratio'))}"
                      f" below requirement", file=sys.stderr)
            elif gate["passed"]:
                print(f"[bench_trace_format] {name} gate passed")

        payload = {
            "benchmark": "trace_format",
            "mode": mode,
            "workload": {"app": "lu", "nranks": cfg["nranks"],
                         "n": cfg["n"], "reps": cfg["reps"],
                         "call_events": counts["call"],
                         "mem_events": counts["mem"]},
            "machine": {"cpu_count": cpus},
            "formats": formats,
            "read_speedup_binary_vs_text": round(read_speedup, 2),
            "size_ratio_text_vs_binary": round(size_ratio, 2),
            "identical_reports": identical,
            "job_counts": list(JOB_COUNTS),
            "read_speedup_gate": speed_gate,
            "size_ratio_gate": size_gate,
        }
        os.makedirs(os.path.dirname(out_path), exist_ok=True)
        with open(out_path, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2)
            fh.write("\n")
        print(f"[bench_trace_format] wrote {out_path}")

        ok = (identical and speed_gate["passed"] is not False
              and size_gate["passed"] is not False)
        return payload, ok
    finally:
        shutil.rmtree(workdir, ignore_errors=True)


def main(argv=None):
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--smoke", action="store_true",
                    help="small CI configuration (artifact goes to "
                         "benchmarks/results/, repo-root JSON untouched)")
    ap.add_argument("--out", default=None,
                    help="artifact path (default: BENCH_trace_format.json "
                         "at the repo root, or benchmarks/results/ with "
                         "--smoke)")
    args = ap.parse_args(argv)
    mode = "smoke" if args.smoke else "full"
    out_path = args.out or (SMOKE_OUT if args.smoke else DEFAULT_OUT)
    _payload, ok = run_bench(mode, out_path)
    return 0 if ok else 1


def test_trace_format_bench_smoke(record, benchmark):
    """pytest entry point: the smoke configuration as a benchmark-suite
    row (``pytest benchmarks/bench_trace_format.py``)."""
    payload, ok = benchmark.pedantic(
        lambda: run_bench("smoke", SMOKE_OUT), rounds=1, iterations=1)
    assert ok, "format differential or size gate failed"
    for fmt, row in payload["formats"].items():
        record("trace_format",
               f"{fmt:6s} write={row['write_seconds']:7.2f}s "
               f"read={row['read_preprocess_seconds']:7.2f}s "
               f"bytes={row['bytes_on_disk']}",
               format=fmt, **{k: row[k] for k in
                              ("write_seconds", "read_preprocess_seconds",
                               "bytes_on_disk")})


if __name__ == "__main__":
    sys.exit(main())
