"""Fuzzing benchmark: recall/precision + differential over a seed corpus,
plus one generated workload at cluster scale.

Two measurements:

* **corpus** — a fixed seed corpus of constrained-random programs with
  injected conflicts runs through the whole harness
  (:func:`repro.gen.fuzz.run_case`): recall against the ground-truth
  manifest must be 1.0, precision is reported, and every differential
  arm (sweep/pairwise engines × columnar/object control planes ×
  cold/warm incremental cache × text/binary trace formats) must produce
  a byte-identical report — 0 mismatches gate in both modes;
* **scale** — one generated workload at the paper's cluster scale
  (64 ranks, ≥1M memory events via the bulk producer lane's ``reps``
  multiplier, binary traces) profiled and analyzed end to end, with
  recall still 1.0 on its injected bugs.

Two entry points:

* ``python benchmarks/bench_fuzz.py`` — the full configuration
  (50-program corpus, 64-rank/1M-event scale run); writes
  ``BENCH_fuzz.json`` at the repo root.
* ``python benchmarks/bench_fuzz.py --smoke`` — a small CI
  configuration (6-program corpus, 16-rank scale run); same
  recall/differential gates, artifact under ``benchmarks/results/``.
"""

import argparse
import json
import os
import sys
import tempfile
import time

from repro.core.checker import check_traces
from repro.core.config import CheckConfig
from repro.gen import GenConfig, generate_program, score_report
from repro.gen.fuzz import fuzz_corpus, profile_program

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
RESULTS_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                           "results")
DEFAULT_OUT = os.path.join(REPO_ROOT, "BENCH_fuzz.json")
SMOKE_OUT = os.path.join(RESULTS_DIR, "BENCH_fuzz_smoke.json")

CONFIGS = {
    "full": dict(
        corpus=dict(seeds=50, gen=dict(nranks=6, rounds=4,
                                       ops_per_round=3,
                                       bugs=("any",) * 3)),
        scale=dict(nranks=64, rounds=3, ops_per_round=4, reps=4000,
                   bugs=("any",) * 6, trace_format="binary"),
        #: full mode must demonstrate the paper's cluster scale
        scale_gates=dict(min_ranks=64, min_events=1_000_000)),
    "smoke": dict(
        corpus=dict(seeds=6, gen=dict(nranks=4, rounds=3,
                                      ops_per_round=3,
                                      bugs=("any",) * 2)),
        scale=dict(nranks=16, rounds=3, ops_per_round=4, reps=200,
                   bugs=("any",) * 3, trace_format="binary"),
        scale_gates=None),
}


def run_corpus(cfg):
    gen_cfg = GenConfig(**cfg["gen"])
    seeds = list(range(cfg["seeds"]))
    start = time.perf_counter()
    report = fuzz_corpus(gen_cfg, seeds)
    seconds = time.perf_counter() - start
    print(f"[bench_fuzz] corpus: {len(seeds)} program(s) in "
          f"{seconds:.1f}s — recall={report.recall:.3f} "
          f"precision={report.precision:.3f} "
          f"mismatches={report.mismatches}")
    for case in report.cases:
        if not case.ok:
            print(f"[bench_fuzz] FAIL seed {case.seed}: "
                  f"{case.to_dict()}", file=sys.stderr)
    return {
        "seeds": seeds,
        "config": gen_cfg.to_dict(),
        "programs": len(seeds),
        "recall": report.recall,
        "precision": round(report.precision, 4),
        "mismatches": report.mismatches,
        "arms_per_case": (len(report.cases[0].arms)
                          if report.cases else 0),
        "seconds": round(seconds, 2),
        "events": sum(c.events for c in report.cases),
        "findings": sum(c.nfindings for c in report.cases),
        "imperfect_seeds": [c.seed for c in report.cases if not c.ok],
    }, report.ok


def run_scale(cfg, gates):
    gen_cfg = GenConfig(seed=1, **cfg)
    start = time.perf_counter()
    generated = generate_program(gen_cfg)
    gen_seconds = time.perf_counter() - start
    with tempfile.TemporaryDirectory(prefix="mcgen-scale-") as trace_dir:
        start = time.perf_counter()
        profiled = profile_program(generated, trace_dir=trace_dir)
        profile_seconds = time.perf_counter() - start
        start = time.perf_counter()
        report = check_traces(profiled.traces, CheckConfig())
        analyze_seconds = time.perf_counter() - start
    score = score_report(report, generated.manifest)
    events = report.stats.events
    row = {
        "config": gen_cfg.to_dict(),
        "nranks": gen_cfg.nranks,
        "events": events,
        "rma_ops": report.stats.rma_ops,
        "generate_seconds": round(gen_seconds, 3),
        "profile_seconds": round(profile_seconds, 3),
        "analyze_seconds": round(analyze_seconds, 3),
        "analyze_events_per_second": round(
            events / max(analyze_seconds, 1e-9)),
        "recall": score.recall,
        "precision": round(score.precision, 4),
        "findings": score.nfindings,
    }
    print(f"[bench_fuzz] scale: {gen_cfg.nranks} ranks, {events} events "
          f"— profile {profile_seconds:.2f}s, analyze "
          f"{analyze_seconds:.2f}s, recall={score.recall:.2f}")
    ok = score.recall == 1.0
    gate_rows = {"recall": {"required": 1.0, "passed": ok}}
    if gates:
        ranks_ok = gen_cfg.nranks >= gates["min_ranks"]
        events_ok = events >= gates["min_events"]
        gate_rows["min_ranks"] = {"required": gates["min_ranks"],
                                  "passed": ranks_ok}
        gate_rows["min_events"] = {"required": gates["min_events"],
                                   "passed": events_ok}
        ok = ok and ranks_ok and events_ok
        if not events_ok:
            print(f"[bench_fuzz] FAIL: scale run produced {events} "
                  f"events (< {gates['min_events']})", file=sys.stderr)
    row["gates"] = gate_rows
    return row, ok


def run_bench(mode, out_path):
    cfg = CONFIGS[mode]
    print(f"[bench_fuzz] mode={mode}")
    corpus, corpus_ok = run_corpus(cfg["corpus"])
    scale, scale_ok = run_scale(cfg["scale"], cfg["scale_gates"])

    payload = {
        "benchmark": "fuzz",
        "mode": mode,
        "machine": {"cpu_count": os.cpu_count() or 1},
        "corpus": corpus,
        "scale": scale,
        "gates": {
            "corpus_recall": {"required": 1.0,
                              "passed": corpus["recall"] == 1.0},
            "corpus_mismatches": {"required": 0,
                                  "passed": corpus["mismatches"] == 0},
            "scale": scale["gates"],
        },
    }
    os.makedirs(os.path.dirname(out_path), exist_ok=True)
    with open(out_path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    print(f"[bench_fuzz] wrote {out_path}")
    return payload, corpus_ok and scale_ok


def main(argv=None):
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--smoke", action="store_true",
                    help="small CI configuration (artifact goes to "
                         "benchmarks/results/, repo-root JSON untouched)")
    ap.add_argument("--out", default=None,
                    help="artifact path (default: BENCH_fuzz.json at the "
                         "repo root, or benchmarks/results/ with --smoke)")
    args = ap.parse_args(argv)
    mode = "smoke" if args.smoke else "full"
    out_path = args.out or (SMOKE_OUT if args.smoke else DEFAULT_OUT)
    _payload, ok = run_bench(mode, out_path)
    return 0 if ok else 1


def test_fuzz_smoke(record, benchmark):
    """pytest entry point: the smoke configuration as a benchmark-suite
    row (``pytest benchmarks/bench_fuzz.py``)."""
    payload, ok = benchmark.pedantic(
        lambda: run_bench("smoke", SMOKE_OUT), rounds=1, iterations=1)
    assert ok, "fuzz recall/differential gate failed"
    corpus = payload["corpus"]
    record("fuzz",
           f"corpus programs={corpus['programs']:3d} "
           f"recall={corpus['recall']:5.3f} "
           f"precision={corpus['precision']:5.3f} "
           f"mismatches={corpus['mismatches']}",
           programs=corpus["programs"], recall=corpus["recall"],
           precision=corpus["precision"],
           mismatches=corpus["mismatches"])
    scale = payload["scale"]
    record("fuzz",
           f"scale ranks={scale['nranks']:3d} events={scale['events']:8d} "
           f"analyze={scale['analyze_seconds']:6.2f}s "
           f"recall={scale['recall']:5.3f}",
           ranks=scale["nranks"], events=scale["events"],
           analyze_seconds=scale["analyze_seconds"],
           recall=scale["recall"])


if __name__ == "__main__":
    sys.exit(main())
