"""E1 — Table I: the RMA operation compatibility matrix.

Regenerates the matrix the paper prints and benchmarks the verdict lookup
that sits on the detectors' hot path (every candidate pair consults it).
"""

from repro.core.compat import KINDS, TABLE, compat_verdict


def render_table1() -> str:
    width = 7
    lines = ["".ljust(width) + "".join(k.upper().ljust(width)
                                       for k in KINDS)]
    for a in KINDS:
        cells = []
        for b in KINDS:
            cell = TABLE[(a, b)]
            if a == "acc" and b == "acc":
                cell = "BOTH*"
            cells.append(cell.ljust(width))
        lines.append(a.upper().ljust(width) + "".join(cells))
    lines.append("*same reduction op and basic datatype only")
    return "\n".join(lines)


def test_table1_matrix(record, benchmark):
    text = benchmark(render_table1)
    for line in text.splitlines():
        record("table1_compat", line)


def test_verdict_lookup_throughput(benchmark):
    pairs = [(a, b, overlap)
             for a in KINDS for b in KINDS for overlap in (False, True)]

    def sweep():
        count = 0
        for a, b, overlap in pairs:
            if compat_verdict(a, b, overlap, acc_same=False) is not None:
                count += 1
        return count

    violations = benchmark(sweep)
    # 2 ERROR pairs x2 symmetry x2 overlap + NONOV overlapping cells:
    # load/put, load/acc, store/get, get/put, get/acc, put/put, put/acc,
    # acc/acc = 8 unordered -> 14 directed overlapping NONOV conflicts
    assert violations == 2 * 2 * 2 + 14
