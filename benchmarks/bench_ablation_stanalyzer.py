"""E6 — ablation: ST-Analyzer-selected vs full instrumentation.

Section VII-B argues the low overhead "is the benefit from static
analysis.  Without static analysis, MC-Checker may cause hundreds of times
more overhead because it needs to instrument all memory load/store
accesses."  Reproduced here on LU: the local matrix block ``a`` dominates
memory traffic but never appears in an RMA call, so ST-Analyzer excludes
it; ``scope='all'`` instruments it anyway.
"""

import pytest

from benchmarks.conftest import median_time
from repro.apps.lu import lu
from repro.profiler.session import baseline_run, profile_run
from repro.stanalyzer import analyze_app


def test_stanalyzer_report_contents(record, benchmark):
    report = benchmark(lambda: analyze_app(lu))
    record("ablation_stanalyzer",
           f"ST-Analyzer selected buffers: {sorted(report.buffer_names)} "
           f"(excluded: the local block 'a')")
    assert "a" not in report.buffer_names


@pytest.mark.parametrize("scope", ["report", "all"])
def test_instrumentation_scope(scope, record, scale, benchmark):
    nranks = min(scale["fig8_ranks"], 8)
    params = dict(n=scale["lu_n"])
    reps = scale["reps"]

    native = median_time(
        lambda: baseline_run(lu, nranks, params=params, delivery="eager"),
        reps)
    run = benchmark.pedantic(
        lambda: profile_run(lu, nranks, params=params, scope=scope,
                            delivery="eager"),
        rounds=max(reps, 2), iterations=1)
    prof = median_time(
        lambda: profile_run(lu, nranks, params=params, scope=scope,
                            delivery="eager"), reps)
    counts = run.traces.event_counts()
    record("ablation_stanalyzer",
           f"scope={scope:7s} ranks={nranks} native={native:6.3f}s "
           f"profiled={prof:6.3f}s overhead={100 * (prof / native - 1):6.1f}% "
           f"mem-events={counts['mem']}")


def test_scope_all_writes_many_more_events(record, scale, benchmark):
    nranks = 4
    params = dict(n=scale["lu_n"])
    selective = profile_run(lu, nranks, params=params, scope="report",
                            delivery="eager")
    everything = benchmark.pedantic(
        lambda: profile_run(lu, nranks, params=params, scope="all",
                            delivery="eager"),
        rounds=1, iterations=1)
    sel = selective.traces.event_counts()["mem"]
    full = everything.traces.event_counts()["mem"]
    record("ablation_stanalyzer",
           f"mem events: selective={sel} full={full} "
           f"ratio={full / max(sel, 1):.1f}x")
    assert full > 2 * sel
