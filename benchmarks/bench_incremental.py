"""Perf harness for the incremental checker's result cache.

Profiles one LU run into binary traces, then measures three cache
temperatures of ``CheckConfig(incremental=True)``:

* **cold** — empty cache: the full pipeline runs and every shard is
  stored (median over fresh cache dirs);
* **warm** — unchanged traces: every shard must be a cache hit, no
  mem-event block is decoded, and the report must be byte-identical to
  the cold one;
* **perturbed** — one load/store event in one rank's trace is altered
  and the trace rewritten: only the shards whose content keys cover the
  change may re-run, and the report must match a cold run over the
  perturbed traces byte for byte.

Two entry points:

* ``python benchmarks/bench_incremental.py`` — the full configuration
  (16-rank LU); artifact at the repo root.  Gate: warm >= 3x faster
  than cold.
* ``python benchmarks/bench_incremental.py --smoke`` — a small CI
  configuration; same identity and reuse checks, the speed gate is
  recorded but not enforced (tiny traces make ratios noisy), artifact
  under ``benchmarks/results/``.
"""

import argparse
import dataclasses
import json
import os
import shutil
import statistics
import sys
import tempfile
import time

from repro import obs
from repro.apps.lu import lu
from repro.core.checker import check_traces
from repro.core.config import CheckConfig
from repro.profiler.events import MemEvent
from repro.profiler.session import profile_run
from repro.profiler.tracer import (
    FORMAT_BINARY, TraceReader, TraceSet, TraceWriter,
)

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
RESULTS_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                           "results")
DEFAULT_OUT = os.path.join(REPO_ROOT, "BENCH_incremental.json")
SMOKE_OUT = os.path.join(RESULTS_DIR, "BENCH_incremental_smoke.json")

SPEEDUP_GATE = 3.0

CONFIGS = {
    "full": dict(nranks=16, n=192, reps=3),
    "smoke": dict(nranks=4, n=48, reps=1),
}


def canonical(report):
    """Byte-comparable report form, modulo wall-clock timings."""
    payload = report.to_dict()
    payload["stats"].pop("phase_seconds")
    return json.dumps(payload, sort_keys=True)


def counted_check(traces, config):
    """Run one incremental check with metrics on; returns
    (report, shard outcome counts, region state counts)."""
    rec = obs.configure(enabled=True)
    try:
        report = check_traces(traces, config)
    finally:
        obs.reset()
    shards = rec.registry.get("incremental_cache_shards_total")
    regions = rec.registry.get("incremental_regions_total")
    return report, {
        outcome: shards.value(outcome=outcome)
        for outcome in ("hit", "miss", "invalidated", "corrupt")
    }, {state: regions.value(state=state) for state in ("clean", "dirty")}


def perturb(src_dir, out_dir, rank):
    """Copy the trace set, altering the address of one late load/store
    event in ``rank``'s trace (the same mutation a recompiled kernel or
    changed allocation would produce)."""
    shutil.copytree(src_dir, out_dir)
    path = TraceSet.rank_path(out_dir, rank, FORMAT_BINARY)
    with TraceReader(path) as reader:
        header, events = reader.header, reader.events()
    mem_positions = [i for i, ev in enumerate(events)
                     if isinstance(ev, MemEvent)]
    target = mem_positions[(3 * len(mem_positions)) // 4]
    events[target] = dataclasses.replace(
        events[target], addr=events[target].addr + events[target].size)
    with TraceWriter(path, rank, header.nranks, app=header.app,
                     format=FORMAT_BINARY) as writer:
        for event in events:
            writer.write(event)


def run_bench(mode, out_path):
    cfg = CONFIGS[mode]
    cpus = os.cpu_count() or 1
    print(f"[bench_incremental] mode={mode} nranks={cfg['nranks']} "
          f"n={cfg['n']} reps={cfg['reps']} cpus={cpus}")

    workdir = tempfile.mkdtemp(prefix="bench-incremental-")
    try:
        run = profile_run(lu, cfg["nranks"], params=dict(n=cfg["n"]),
                          scope="report", delivery="eager",
                          trace_dir=os.path.join(workdir, "traces"),
                          trace_format=FORMAT_BINARY)
        traces = run.traces
        counts = traces.event_counts()
        print(f"[bench_incremental] workload: {counts['call']} calls, "
              f"{counts['mem']} load/store events")

        cache_dir = os.path.join(workdir, "cache")
        config = CheckConfig(incremental=True, cache_dir=cache_dir)

        # cold: median over runs against fresh cache directories (the
        # last one leaves ``cache_dir`` populated for the warm arm)
        cold_times = []
        for rep in range(cfg["reps"]):
            shutil.rmtree(cache_dir, ignore_errors=True)
            start = time.perf_counter()
            cold_report = check_traces(traces, config)
            cold_times.append(time.perf_counter() - start)
        cold_seconds = statistics.median(cold_times)
        cold_canon = canonical(cold_report)
        print(f"[bench_incremental] cold: {cold_seconds:.3f}s")

        warm_times = []
        for rep in range(cfg["reps"]):
            start = time.perf_counter()
            warm_report = check_traces(traces, config)
            warm_times.append(time.perf_counter() - start)
        warm_seconds = statistics.median(warm_times)
        identical_warm = canonical(warm_report) == cold_canon
        speedup = cold_seconds / warm_seconds
        print(f"[bench_incremental] warm: {warm_seconds:.3f}s "
              f"(speedup {speedup:.1f}x, identical={identical_warm})")

        _report, warm_shards, warm_regions = counted_check(traces, config)
        total_shards = sum(warm_shards.values())
        fully_reused = (warm_shards["hit"] == total_shards
                        and warm_regions["dirty"] == 0)
        if not fully_reused:
            print(f"[bench_incremental] FAIL: warm run re-ran shards: "
                  f"{warm_shards}", file=sys.stderr)

        # perturbation: one mem event in one rank changes; the warm run
        # over the perturbed traces may only re-run the shards that can
        # see the change, yet must match a cold run byte for byte
        perturbed_dir = os.path.join(workdir, "perturbed")
        perturb(traces.directory, perturbed_dir, rank=0)
        perturbed = TraceSet(perturbed_dir)

        start = time.perf_counter()
        warm_p, shards_p, regions_p = counted_check(perturbed, config)
        perturbed_seconds = time.perf_counter() - start
        cold_p = check_traces(perturbed, CheckConfig(
            incremental=True,
            cache_dir=os.path.join(workdir, "cache-perturbed")))
        identical_perturbed = canonical(warm_p) == canonical(cold_p)
        dirty_shards = (shards_p["miss"] + shards_p["invalidated"]
                        + shards_p["corrupt"])
        partial_reuse = (shards_p["hit"] >= 1
                         and dirty_shards >= 1
                         and dirty_shards < total_shards)
        print(f"[bench_incremental] perturbed: {perturbed_seconds:.3f}s, "
              f"shards {shards_p}, regions {regions_p}, "
              f"identical={identical_perturbed}")
        if not partial_reuse:
            print(f"[bench_incremental] FAIL: perturbed run did not "
                  f"partially reuse the cache: {shards_p}",
                  file=sys.stderr)

        speed_applies = mode == "full"
        speed_gate = {
            "required_speedup": SPEEDUP_GATE,
            "measured_speedup": round(speedup, 2),
            "applies": speed_applies,
            "passed": speedup >= SPEEDUP_GATE if speed_applies else None,
        }
        if not speed_applies:
            speed_gate["skipped_because"] = (
                "smoke traces are too small for a stable ratio")
        if speed_gate["passed"] is False:
            print(f"[bench_incremental] FAIL: warm speedup "
                  f"{speedup:.2f}x below {SPEEDUP_GATE}x",
                  file=sys.stderr)
        elif speed_gate["passed"]:
            print("[bench_incremental] warm-speedup gate passed")

        payload = {
            "benchmark": "incremental",
            "mode": mode,
            "workload": {"app": "lu", "nranks": cfg["nranks"],
                         "n": cfg["n"], "reps": cfg["reps"],
                         "call_events": counts["call"],
                         "mem_events": counts["mem"]},
            "machine": {"cpu_count": cpus},
            "cold_seconds": round(cold_seconds, 4),
            "warm_seconds": round(warm_seconds, 4),
            "warm_speedup": round(speedup, 2),
            "identical_warm_report": identical_warm,
            "warm_shards": warm_shards,
            "total_shards": total_shards,
            "fully_reused_warm": fully_reused,
            "perturbed": {
                "seconds": round(perturbed_seconds, 4),
                "shards": shards_p,
                "regions": regions_p,
                "identical_report": identical_perturbed,
                "partial_reuse": partial_reuse,
            },
            "warm_speedup_gate": speed_gate,
        }
        os.makedirs(os.path.dirname(out_path), exist_ok=True)
        with open(out_path, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2)
            fh.write("\n")
        print(f"[bench_incremental] wrote {out_path}")

        ok = (identical_warm and identical_perturbed and fully_reused
              and partial_reuse and speed_gate["passed"] is not False)
        return payload, ok
    finally:
        shutil.rmtree(workdir, ignore_errors=True)


def main(argv=None):
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--smoke", action="store_true",
                    help="small CI configuration (artifact goes to "
                         "benchmarks/results/, repo-root JSON untouched)")
    ap.add_argument("--out", default=None,
                    help="artifact path (default: BENCH_incremental.json "
                         "at the repo root, or benchmarks/results/ with "
                         "--smoke)")
    args = ap.parse_args(argv)
    mode = "smoke" if args.smoke else "full"
    out_path = args.out or (SMOKE_OUT if args.smoke else DEFAULT_OUT)
    _payload, ok = run_bench(mode, out_path)
    return 0 if ok else 1


def test_incremental_bench_smoke(record, benchmark):
    """pytest entry point: the smoke configuration as a benchmark-suite
    row (``pytest benchmarks/bench_incremental.py``)."""
    payload, ok = benchmark.pedantic(
        lambda: run_bench("smoke", SMOKE_OUT), rounds=1, iterations=1)
    assert ok, "incremental differential or cache-reuse check failed"
    record("incremental",
           f"cold={payload['cold_seconds']:7.3f}s "
           f"warm={payload['warm_seconds']:7.3f}s "
           f"speedup={payload['warm_speedup']:5.1f}x "
           f"shards={payload['total_shards']}",
           cold_seconds=payload["cold_seconds"],
           warm_seconds=payload["warm_seconds"],
           warm_speedup=payload["warm_speedup"],
           total_shards=payload["total_shards"])


if __name__ == "__main__":
    sys.exit(main())
