"""Shared benchmark infrastructure.

Every benchmark regenerates one of the paper's evaluation artifacts
(tables/figures; see DESIGN.md section 4).  Besides pytest-benchmark's
timing table, each writes the *paper-shaped* rows (normalized runtimes,
overhead percentages, event rates, detection outcomes) to
``benchmarks/results/<artifact>.txt`` and echoes them to stdout, so a
plain ``pytest benchmarks/ --benchmark-only -s`` reproduces the evaluation
section end to end.

Scale knobs: the paper ran 64-rank jobs on a 658-node cluster; the
simulated runs default to smaller rank counts/problem sizes that preserve
the curves' shape.  Set ``MCCHECKER_BENCH_SCALE=paper`` for the full-size
(slow) configuration.
"""

import json
import os
import statistics
import time

import pytest

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

#: scale presets: (figure8 ranks, figure9/10 rank sweep, LU matrix size)
SCALES = {
    "quick": {"fig8_ranks": 8, "rank_sweep": (2, 4, 8, 16), "lu_n": 48,
              "reps": 3},
    "paper": {"fig8_ranks": 64, "rank_sweep": (8, 16, 32, 64, 128),
              "lu_n": 160, "reps": 3},
}


def bench_scale():
    return SCALES[os.environ.get("MCCHECKER_BENCH_SCALE", "quick")]


class _Recorder:
    """Writes each artifact twice: human-readable ``.txt`` rows and a
    machine-readable ``.json`` document (``{"artifact", "scale",
    "rows": [...]}``) so the BENCH trajectory can be diffed across PRs.
    Callers may attach structured fields to a row
    (``record(artifact, text, native=0.12, overhead_pct=31.0)``)."""

    def __init__(self):
        os.makedirs(RESULTS_DIR, exist_ok=True)
        self._started = set()
        self._rows = {}

    def path(self, artifact):
        return os.path.join(RESULTS_DIR, f"{artifact}.txt")

    def json_path(self, artifact):
        return os.path.join(RESULTS_DIR, f"{artifact}.json")

    def row(self, artifact, text, **fields):
        mode = "a" if artifact in self._started else "w"
        self._started.add(artifact)
        with open(self.path(artifact), mode, encoding="utf-8") as fh:
            fh.write(text + "\n")
        rows = self._rows.setdefault(artifact, [])
        entry = {"text": text}
        entry.update(fields)
        rows.append(entry)
        with open(self.json_path(artifact), "w", encoding="utf-8") as fh:
            json.dump({
                "artifact": artifact,
                "scale": os.environ.get("MCCHECKER_BENCH_SCALE", "quick"),
                "rows": rows,
            }, fh, indent=2)
            fh.write("\n")
        print(f"[{artifact}] {text}")


_RECORDER = _Recorder()


@pytest.fixture(scope="session")
def record():
    """record(artifact, row_text, **fields): persist one artifact row
    (text goes to ``results/<artifact>.txt``; text plus the structured
    fields to ``results/<artifact>.json``)."""
    return _RECORDER.row


@pytest.fixture(scope="session")
def scale():
    return bench_scale()


def median_time(fn, reps):
    """Median wall-clock of ``reps`` invocations (fresh state per call)."""
    times = []
    for _ in range(reps):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return statistics.median(times)
