"""E5 — Figure 10: profiled event rates vs process count (LU).

The mechanism behind Figure 9: per-rank load/store event counts fall as
``~1/P`` under strong scaling while per-rank MPI-call counts stay flat, so
the per-rank profiling event *rate* decreases with scale.  Records, per
rank count: events per rank by class and the aggregate event rate.
"""

import pytest

from repro.apps.lu import lu
from repro.profiler.session import profile_run

_MEM_PER_RANK = {}


@pytest.mark.parametrize("point", range(4))
def test_fig10_event_rates(point, record, scale, benchmark):
    sweep = list(scale["rank_sweep"])[:4]
    nranks = sweep[point]
    params = dict(n=scale["lu_n"])

    run = benchmark.pedantic(
        lambda: profile_run(lu, nranks, params=params, scope="report",
                            delivery="eager"),
        rounds=1, iterations=1)
    counts = run.traces.event_counts()
    mem_pr = counts["mem"] / nranks
    call_pr = counts["call"] / nranks
    rate = (counts["mem"] + counts["call"]) / run.elapsed
    _MEM_PER_RANK[nranks] = mem_pr
    record("fig10_event_rate",
           f"ranks={nranks:<4d} loadstore/rank={mem_pr:8.1f} "
           f"mpicalls/rank={call_pr:8.1f} "
           f"total-rate={rate:10.0f} events/s "
           f"(loads={counts['load']}, stores={counts['store']}, "
           f"calls={counts['call']})")


def test_fig10_trend(record, benchmark):
    assert len(_MEM_PER_RANK) >= 2
    ranks = sorted(_MEM_PER_RANK)
    series = benchmark(lambda: [_MEM_PER_RANK[r] for r in ranks])
    record("fig10_event_rate",
           "trend: per-rank load/store events "
           + " -> ".join(f"{v:.0f}@{r}" for r, v in zip(ranks, series))
           + "  (paper: rate of load/store events decreases with scale)")
    # strictly decreasing per-rank memory-event counts
    assert all(a > b for a, b in zip(series, series[1:]))
